#include "core/root_finder.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "gen/classic_polys.hpp"
#include "gen/matrix_polys.hpp"
#include "support/error.hpp"
#include "support/prng.hpp"

namespace pr {
namespace {

RootFinderConfig validated(std::size_t mu) {
  RootFinderConfig cfg;
  cfg.mu_bits = mu;
  cfg.validate = true;
  return cfg;
}

TEST(RootFinder, IntegerRootsAreExact) {
  const auto rep =
      find_real_roots(poly_from_integer_roots({-7, -3, 0, 2, 11}),
                      validated(32));
  ASSERT_EQ(rep.roots.size(), 5u);
  const long long expect[] = {-7, -3, 0, 2, 11};
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(rep.roots[i], BigInt(expect[i]) << 32);
    EXPECT_EQ(rep.multiplicities[i], 1u);
  }
  EXPECT_FALSE(rep.squarefree_reduced);
  EXPECT_FALSE(rep.used_sturm_fallback);
  EXPECT_EQ(rep.degree, 5);
  EXPECT_EQ(rep.distinct_roots, 5);
}

TEST(RootFinder, DegreeOneAndTwo) {
  const auto lin = find_real_roots(Poly{-3, 2}, validated(10));  // 3/2
  ASSERT_EQ(lin.roots.size(), 1u);
  EXPECT_EQ(lin.roots[0], BigInt(3) << 9);
  const auto quad = find_real_roots(Poly{-2, 0, 1}, validated(53));
  ASSERT_EQ(quad.roots.size(), 2u);
  EXPECT_NEAR(quad.root_as_double(0), -std::sqrt(2.0), 1e-12);
  EXPECT_NEAR(quad.root_as_double(1), std::sqrt(2.0), 1e-12);
}

TEST(RootFinder, CeilingConvention) {
  // Root at exactly 5/4 with mu = 1: ceil(2 * 1.25) = 3.
  const auto rep = find_real_roots(Poly{-5, 4}, validated(1));
  EXPECT_EQ(rep.roots[0].to_int64(), 3);
  // Negative root -5/4: ceil(-2.5) = -2.
  const auto neg = find_real_roots(Poly{5, 4}, validated(1));
  EXPECT_EQ(neg.roots[0].to_int64(), -2);
}

TEST(RootFinder, WilkinsonFamily) {
  for (int n : {5, 10, 16, 23}) {
    const auto rep = find_real_roots(wilkinson(n), validated(24));
    ASSERT_EQ(rep.roots.size(), static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      EXPECT_EQ(rep.roots[static_cast<std::size_t>(i)],
                BigInt(static_cast<long long>(i + 1)) << 24)
          << "wilkinson(" << n << ") root " << i + 1;
    }
  }
}

TEST(RootFinder, RepeatedRootsReportMultiplicities) {
  const auto rep = find_real_roots(
      poly_from_integer_roots({1, 1, 2, 2, 2, 5}), validated(16));
  EXPECT_TRUE(rep.squarefree_reduced);
  ASSERT_EQ(rep.roots.size(), 3u);
  EXPECT_EQ(rep.roots[0], BigInt(1) << 16);
  EXPECT_EQ(rep.roots[1], BigInt(2) << 16);
  EXPECT_EQ(rep.roots[2], BigInt(5) << 16);
  EXPECT_EQ(rep.multiplicities, (std::vector<unsigned>{2, 3, 1}));
  EXPECT_EQ(rep.distinct_roots, 3);
  EXPECT_EQ(rep.degree, 6);
}

TEST(RootFinder, PurePower) {
  const auto rep = find_real_roots(poly_from_integer_roots({-4, -4, -4, -4}),
                                   validated(8));
  ASSERT_EQ(rep.roots.size(), 1u);
  EXPECT_EQ(rep.roots[0], BigInt(-4) << 8);
  EXPECT_EQ(rep.multiplicities[0], 4u);
}

TEST(RootFinder, EvenRealRootedPolynomialsAreNormal) {
  // For squarefree polynomials with ALL roots real the remainder sequence
  // is provably normal (it is a Sturm sequence that must realize n sign
  // variations), so the tree path -- not the fallback -- handles them.
  const Poly p = Poly{-2, 0, 1} * Poly{-3, 0, 1};
  const auto rep = find_real_roots(p, validated(40));
  EXPECT_FALSE(rep.used_sturm_fallback);
  ASSERT_EQ(rep.roots.size(), 4u);
  EXPECT_NEAR(rep.root_as_double(0), -std::sqrt(3.0), 1e-10);
  EXPECT_NEAR(rep.root_as_double(1), -std::sqrt(2.0), 1e-10);
  EXPECT_NEAR(rep.root_as_double(2), std::sqrt(2.0), 1e-10);
  EXPECT_NEAR(rep.root_as_double(3), std::sqrt(3.0), 1e-10);
}

TEST(RootFinder, NonNormalSequenceMeansComplexRoots) {
  // x^4 + 1 (no real roots) has a non-normal sequence; the driver falls
  // back to the Sturm baseline, which correctly reports no real roots.
  const Poly p{1, 0, 0, 0, 1};
  RootFinderConfig cfg;
  cfg.mu_bits = 16;
  const auto rep = find_real_roots(p, cfg);
  EXPECT_TRUE(rep.used_sturm_fallback);
  EXPECT_TRUE(rep.roots.empty());
}

TEST(RootFinder, FallbackCanBeDisabled) {
  const Poly p{1, 0, 0, 0, 1};
  RootFinderConfig cfg;
  cfg.mu_bits = 10;
  cfg.allow_sturm_fallback = false;
  EXPECT_THROW(find_real_roots(p, cfg), NonNormalSequence);
}

TEST(RootFinder, MixedRealComplexRootsViaFallback) {
  // (x^2+1)(x^2-2)(x^2-x-1): only some roots real.  Whether or not the
  // sequence happens to be normal, asking for validation must not pass
  // silently with wrong roots: either the fallback finds exactly the real
  // roots, or the tree path's internal checks fire.
  const Poly p = Poly{1, 0, 1} * Poly{-2, 0, 1} * Poly{-1, -1, 1};
  RootFinderConfig cfg;
  cfg.mu_bits = 40;
  try {
    const auto rep = find_real_roots(p, cfg);
    ASSERT_EQ(rep.roots.size(), 4u);
    EXPECT_NEAR(rep.root_as_double(0), -std::sqrt(2.0), 1e-9);
    EXPECT_NEAR(rep.root_as_double(1), (1.0 - std::sqrt(5.0)) / 2, 1e-9);
    EXPECT_NEAR(rep.root_as_double(2), std::sqrt(2.0), 1e-9);
    EXPECT_NEAR(rep.root_as_double(3), (1.0 + std::sqrt(5.0)) / 2, 1e-9);
    EXPECT_TRUE(rep.used_sturm_fallback)
        << "a tree-path result for a complex-rooted input would be wrong";
  } catch (const Error&) {
    // Acceptable: the tree path detected the contract violation.
  }
}

TEST(RootFinder, ContentIsIrrelevant) {
  const Poly p = BigInt(60) * poly_from_integer_roots({-1, 4});
  const auto rep = find_real_roots(p, validated(12));
  ASSERT_EQ(rep.roots.size(), 2u);
  EXPECT_EQ(rep.roots[0], BigInt(-1) << 12);
  EXPECT_EQ(rep.roots[1], BigInt(4) << 12);
}

TEST(RootFinder, NegativeLeadingCoefficient) {
  const Poly p = BigInt(-3) * poly_from_integer_roots({-2, 1, 7});
  const auto rep = find_real_roots(p, validated(20));
  ASSERT_EQ(rep.roots.size(), 3u);
  EXPECT_EQ(rep.roots[2], BigInt(7) << 20);
}

TEST(RootFinder, CloseRootsShareCellAtCoarsePrecision) {
  // Roots 1/4 and 3/8 at mu = 1: both approximate to ceil(2x)/2 = 1/2.
  const Poly p = Poly{-1, 4} * Poly{-3, 8};
  const auto rep = find_real_roots(p, validated(1));
  ASSERT_EQ(rep.roots.size(), 2u);
  EXPECT_EQ(rep.roots[0].to_int64(), 1);
  EXPECT_EQ(rep.roots[1].to_int64(), 1);
}

TEST(RootFinder, ChebyshevNodesAgainstClosedForm) {
  const int n = 9;
  const auto rep = find_real_roots(chebyshev_t(n), validated(50));
  ASSERT_EQ(rep.roots.size(), static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const double expected =
        std::cos((2.0 * (n - i) - 1.0) / (2.0 * n) * std::acos(-1.0));
    EXPECT_NEAR(rep.root_as_double(static_cast<std::size_t>(i)), expected,
                1e-12);
  }
}

TEST(RootFinder, HermiteAndLegendreRootsSymmetric) {
  for (const Poly& p : {hermite(8), legendre_scaled(9)}) {
    const auto rep = find_real_roots(p, validated(60));
    const std::size_t n = rep.roots.size();
    ASSERT_EQ(static_cast<int>(n), p.degree());
    // Roots come in +- pairs (odd degree has 0 as middle root; the
    // ceiling convention maps -x and x to values summing to <= 1 ulp).
    for (std::size_t i = 0; i < n / 2; ++i) {
      const double a = rep.root_as_double(i);
      const double b = rep.root_as_double(n - 1 - i);
      EXPECT_NEAR(a + b, 0.0, 1e-12);
    }
  }
}

TEST(RootFinder, RandomCharPolyEigenvalueIdentities) {
  Prng rng(4242);
  for (int trial = 0; trial < 6; ++trial) {
    const std::size_t n = 6 + rng.below(14);
    const auto input = paper_input(n, rng);
    const auto rep = find_real_roots(input.poly, validated(60));
    // Sum of eigenvalues = trace; sum of squares = tr(A^2).
    double sum = 0, sumsq = 0;
    for (std::size_t i = 0; i < rep.roots.size(); ++i) {
      const double v = rep.root_as_double(i);
      sum += v * rep.multiplicities[i];
      sumsq += v * v * rep.multiplicities[i];
    }
    const double tr = input.matrix.trace().to_double();
    const double tr2 = (input.matrix * input.matrix).trace().to_double();
    EXPECT_NEAR(sum, tr, 1e-6 + 1e-9 * std::fabs(tr));
    EXPECT_NEAR(sumsq, tr2, 1e-6 + 1e-9 * std::fabs(tr2));
  }
}

TEST(RootFinder, PrecisionSweepIsConsistent) {
  // Higher-precision answers refine lower-precision ones:
  // ceil(2^a x) == ceil(ceil(2^b x) / 2^(b-a)) for b > a.
  const Poly p = Poly{-2, 0, 1} * Poly{-5, 0, 1} * Poly{-11, 0, 1};
  const auto hi = find_real_roots(p, validated(64));
  for (std::size_t mu : {2u, 9u, 33u}) {
    const auto lo = find_real_roots(p, validated(mu));
    ASSERT_EQ(lo.roots.size(), hi.roots.size());
    for (std::size_t i = 0; i < lo.roots.size(); ++i) {
      EXPECT_EQ(lo.roots[i], BigInt::cdiv(hi.roots[i],
                                          BigInt::pow2(64 - mu)))
          << "mu=" << mu << " i=" << i;
    }
  }
}

TEST(RootFinder, RepeatedComplexFactorsWithOneRealRoot) {
  // p = (x^2+1)^2 (x-1): one real root (multiplicity 1), repeated complex
  // factors.  Exercises the squarefree + fallback interplay.
  const Poly c2 = Poly{1, 0, 1};
  const Poly p = c2 * c2 * Poly{-1, 1};
  RootFinderConfig cfg;
  cfg.mu_bits = 24;
  const auto rep = find_real_roots(p, cfg);
  ASSERT_EQ(rep.roots.size(), 1u);
  EXPECT_EQ(rep.roots[0], BigInt(1) << 24);
  EXPECT_EQ(rep.multiplicities[0], 1u);
  EXPECT_TRUE(rep.used_sturm_fallback);
}

TEST(RootFinder, RepeatedRealAndComplexMix) {
  // p = (x-2)^3 (x^2+3): real root 2 with multiplicity 3.
  const Poly p = poly_from_integer_roots({2, 2, 2}) * Poly{3, 0, 1};
  RootFinderConfig cfg;
  cfg.mu_bits = 12;
  const auto rep = find_real_roots(p, cfg);
  ASSERT_EQ(rep.roots.size(), 1u);
  EXPECT_EQ(rep.roots[0], BigInt(2) << 12);
  EXPECT_EQ(rep.multiplicities[0], 3u);
}

TEST(RootFinder, RejectsConstants) {
  EXPECT_THROW(find_real_roots(Poly{42}), InvalidArgument);
  EXPECT_THROW(find_real_roots(Poly{}), InvalidArgument);
}

TEST(RootFinder, StatsArePopulated) {
  Prng rng(777);
  const auto input = paper_input(12, rng);
  const auto rep = find_real_roots(input.poly, validated(40));
  EXPECT_GT(rep.stats.intervals_solved, 0u);
  EXPECT_GT(rep.stats.bisect_evals, 0u);
  EXPECT_GT(rep.bound_pow2, 0u);
}

}  // namespace
}  // namespace pr
