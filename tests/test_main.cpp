// Test entry point: standard gtest main plus the calibration startup
// hook, so a POLYROOTS_CALIBRATION profile is active for the whole
// suite (the CI calibrate-then-test leg runs every bit-identity suite
// under the measured profile; without the variable this is a no-op).
#include <gtest/gtest.h>

#include "calibrate/calibrate.hpp"

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  pr::calibrate::startup();
  return RUN_ALL_TESTS();
}
