#include "poly/bounds.hpp"

#include <gtest/gtest.h>

#include "gen/classic_polys.hpp"
#include "gen/matrix_polys.hpp"
#include "poly/squarefree.hpp"
#include "poly/sturm.hpp"
#include "support/error.hpp"
#include "support/prng.hpp"

namespace pr {
namespace {

TEST(Bounds, EnclosesKnownIntegerRoots) {
  const Poly p = poly_from_integer_roots({100, -200, 5});
  const std::size_t r = root_bound_pow2(p);
  EXPECT_GT(BigInt::pow2(r), BigInt(200));
}

TEST(Bounds, MonicSmallCoefficients) {
  // x^2 - 2: roots ~1.41.
  EXPECT_GE(root_bound_pow2(Poly{-2, 0, 1}), 2u);
}

TEST(Bounds, NonMonicLeadingCoefficientShrinksBound) {
  // 1000x - 1: root 0.001; Cauchy bound stays small.
  EXPECT_LE(root_bound_pow2(Poly{-1, 1000}), 2u);
}

TEST(Bounds, RejectsConstants) {
  EXPECT_THROW(root_bound_pow2(Poly{3}), InvalidArgument);
  EXPECT_THROW(root_bound_pow2(Poly{}), InvalidArgument);
}

TEST(Bounds, SturmConfirmsAllRootsInsideBound) {
  Prng rng(55);
  for (int iter = 0; iter < 20; ++iter) {
    const auto input = paper_input(6 + rng.below(10), rng);
    const std::size_t r = root_bound_pow2(input.poly);
    const SturmChain sc(squarefree_part(input.poly));
    const BigInt b = BigInt::pow2(r);
    EXPECT_EQ(sc.count_half_open(-b, b, 0), sc.distinct_real_roots())
        << "some root escapes [-2^R, 2^R]";
  }
}

TEST(Bounds, WilkinsonBound) {
  // Wilkinson(20) roots are 1..20 with astronomically larger coefficients
  // (the constant term is 20!).  The Lagrange-Zassenhaus estimate keeps
  // the bound tight: 2^R must exceed 20 but should stay within a few
  // doublings of it.
  const std::size_t r = root_bound_pow2(wilkinson(20));
  EXPECT_GT(BigInt::pow2(r), BigInt(20));
  EXPECT_LE(r, 9u) << "bound far looser than the Lagrange estimate";
}

TEST(Bounds, LagrangeBeatsCauchyOnWilkinson) {
  // A direct consequence of taking the min: the Cauchy-only bound for
  // wilkinson(20) would be ~ bits(max coeff) ~ 62; the combined bound is
  // dramatically smaller.
  EXPECT_LT(root_bound_pow2(wilkinson(20)),
            wilkinson(20).max_coeff_bits() / 2);
}

TEST(Bounds, CauchyBeatsLagrangeOnDominantMidCoefficient) {
  // p = x^3 + 2^60 x^2 + 1: Cauchy gives ~61 bits; Lagrange's k=1 term
  // gives the same here, but for p = x^3 + 2^60 x + 1 (k=2) Lagrange
  // gives ~31 bits.
  const Poly p = Poly{1, 0, 0, 1} + Poly::monomial(BigInt::pow2(60), 1);
  EXPECT_LE(root_bound_pow2(p), 33u);
}

}  // namespace
}  // namespace pr
