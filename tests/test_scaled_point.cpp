#include "core/scaled_point.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"
#include "support/prng.hpp"

namespace pr {
namespace {

TEST(ScaledPoint, CeilShift) {
  EXPECT_EQ(ceil_shift(BigInt(8), 2).to_int64(), 2);
  EXPECT_EQ(ceil_shift(BigInt(9), 2).to_int64(), 3);
  EXPECT_EQ(ceil_shift(BigInt(-9), 2).to_int64(), -2);
  EXPECT_EQ(ceil_shift(BigInt(-8), 2).to_int64(), -2);
  EXPECT_EQ(ceil_shift(BigInt(0), 5).to_int64(), 0);
  EXPECT_EQ(ceil_shift(BigInt(7), 0).to_int64(), 7);
  EXPECT_EQ(ceil_shift(BigInt(1), 10).to_int64(), 1);
}

TEST(ScaledPoint, FloorShift) {
  EXPECT_EQ(floor_shift(BigInt(8), 2).to_int64(), 2);
  EXPECT_EQ(floor_shift(BigInt(9), 2).to_int64(), 2);
  EXPECT_EQ(floor_shift(BigInt(-9), 2).to_int64(), -3);
  EXPECT_EQ(floor_shift(BigInt(-8), 2).to_int64(), -2);
  EXPECT_EQ(floor_shift(BigInt(-1), 10).to_int64(), -1);
}

TEST(ScaledPoint, FloorCeilRelation) {
  Prng rng(12);
  for (int i = 0; i < 500; ++i) {
    const BigInt a(rng.range(-100000, 100000));
    const std::size_t k = rng.below(12);
    const BigInt f = floor_shift(a, k);
    const BigInt c = ceil_shift(a, k);
    EXPECT_LE(f, c);
    EXPECT_LE(c - f, BigInt(1));
    EXPECT_LE(f << k, a);
    EXPECT_GE(c << k, a);
    // Exact when divisible.
    if ((a - (f << k)).is_zero()) {
      EXPECT_EQ(f, c);
    }
  }
}

TEST(ScaledPoint, Upscale) {
  EXPECT_EQ(upscale(BigInt(3), 2, 5).to_int64(), 24);
  EXPECT_EQ(upscale(BigInt(-1), 0, 3).to_int64(), -8);
  EXPECT_EQ(upscale(BigInt(7), 4, 4).to_int64(), 7);
  EXPECT_THROW(upscale(BigInt(1), 5, 2), InvalidArgument);
}

TEST(ScaledPoint, MuApprox) {
  // 13/8 at mu=1: ceil(2 * 13/8) = ceil(3.25) = 4... value 13/2^3,
  // 2^1 x = 13/4 -> ceil = 4.
  EXPECT_EQ(mu_approx_of_scaled(BigInt(13), 3, 1).to_int64(), 4);
  EXPECT_EQ(mu_approx_of_scaled(BigInt(-13), 3, 1).to_int64(), -3);
  EXPECT_EQ(mu_approx_of_scaled(BigInt(13), 3, 3).to_int64(), 13);
  EXPECT_THROW(mu_approx_of_scaled(BigInt(1), 2, 5), InvalidArgument);
}

TEST(ScaledPoint, ToStringRounding) {
  EXPECT_EQ(scaled_to_string(BigInt(1), 1, 2), "0.50");
  EXPECT_EQ(scaled_to_string(BigInt(-1), 1, 2), "-0.50");
  EXPECT_EQ(scaled_to_string(BigInt(3), 2, 3), "0.750");
  EXPECT_EQ(scaled_to_string(BigInt(10), 0, 1), "10.0");
  // 1/3 is not representable; 1/2^20 * 349525 = 0.333333015...
  EXPECT_EQ(scaled_to_string(BigInt(349525), 20, 4), "0.3333");
}

TEST(ScaledPoint, ToDouble) {
  EXPECT_DOUBLE_EQ(scaled_to_double(BigInt(3), 1), 1.5);
  EXPECT_DOUBLE_EQ(scaled_to_double(BigInt(-5), 2), -1.25);
  EXPECT_DOUBLE_EQ(scaled_to_double(BigInt(0), 17), 0.0);
}

}  // namespace
}  // namespace pr
