#include "poly/remainder_sequence.hpp"

#include <gtest/gtest.h>

#include "gen/classic_polys.hpp"
#include "gen/matrix_polys.hpp"
#include "poly/sturm.hpp"
#include "support/error.hpp"
#include "support/prng.hpp"

namespace pr {
namespace {

TEST(RemainderSequence, DegreesAndLeadingCoefficients) {
  const Poly p = poly_from_integer_roots({-5, -2, 1, 4, 9, 13});
  const auto rs = compute_remainder_sequence(p);
  EXPECT_EQ(rs.n, 6);
  EXPECT_EQ(rs.nstar, 6);
  EXPECT_FALSE(rs.extended());
  for (int i = 0; i <= 6; ++i) {
    EXPECT_EQ(rs.F[static_cast<std::size_t>(i)].degree(), 6 - i);
    if (i >= 1) {
      EXPECT_EQ(rs.c[static_cast<std::size_t>(i)],
                rs.F[static_cast<std::size_t>(i)].leading());
    }
  }
  EXPECT_EQ(rs.c[0].to_int64(), 1) << "c_0 is the sign of lc(F_0)";
}

TEST(RemainderSequence, RecurrenceHoldsSymbolically) {
  // F_{i+1} * c_{i-1}^2 == Q_i F_i - c_i^2 F_{i-1} for every i.
  const Poly p = poly_from_integer_roots({-7, -3, 0, 2, 5, 8, 12});
  const auto rs = compute_remainder_sequence(p);
  for (int i = 1; i <= rs.n - 1; ++i) {
    const auto ui = static_cast<std::size_t>(i);
    const Poly lhs =
        Poly::constant(rs.c[ui - 1] * rs.c[ui - 1]) * rs.F[ui + 1];
    const Poly rhs = rs.Q[ui] * rs.F[ui] -
                     Poly::constant(rs.c[ui] * rs.c[ui]) * rs.F[ui - 1];
    EXPECT_EQ(lhs, rhs) << "iteration " << i;
  }
}

TEST(RemainderSequence, QuotientsAreLinearWithPositiveLeading) {
  const Poly p = poly_from_integer_roots({-9, -4, -1, 3, 6, 11, 15, 20});
  const auto rs = compute_remainder_sequence(p);
  for (int i = 1; i <= rs.n - 1; ++i) {
    const Poly& q = rs.Q[static_cast<std::size_t>(i)];
    EXPECT_EQ(q.degree(), 1);
    EXPECT_GT(q.leading().signum(), 0)
        << "Appendix A: Q_i has positive leading coefficient";
  }
}

TEST(RemainderSequence, EachFiInterleavesPredecessor) {
  // Theorem 1 (case j = n): F_i interleaves F_{i-1}; in particular every
  // F_i has full real root count.
  const Poly p = poly_from_integer_roots({-8, -2, 1, 5, 9, 14});
  const auto rs = compute_remainder_sequence(p);
  for (int i = 0; i <= rs.n - 1; ++i) {
    const Poly& f = rs.F[static_cast<std::size_t>(i)];
    if (f.degree() < 1) continue;
    EXPECT_EQ(SturmChain(f).distinct_real_roots(), f.degree());
  }
}

TEST(RemainderSequence, NegativeLeadingInput) {
  const Poly p = BigInt(-1) * poly_from_integer_roots({-3, 2, 7});
  const auto rs = compute_remainder_sequence(p);
  EXPECT_EQ(rs.c[0].to_int64(), -1);
  EXPECT_FALSE(rs.extended());
  // Recurrence still exact.
  const Poly lhs = Poly::constant(rs.c[0] * rs.c[0]) * rs.F[2];
  const Poly rhs =
      rs.Q[1] * rs.F[1] - Poly::constant(rs.c[1] * rs.c[1]) * rs.F[0];
  EXPECT_EQ(lhs, rhs);
}

TEST(RemainderSequence, RepeatedRootsExtendPerSection23) {
  const Poly p = poly_from_integer_roots({1, 1, 2, 2, 2});
  const auto rs = compute_remainder_sequence(p);
  EXPECT_TRUE(rs.extended());
  EXPECT_EQ(rs.nstar, 2);
  // Footnote 2: F_{n*} ~ gcd(F_0, F_0').
  EXPECT_EQ(rs.gcd_part, poly_from_integer_roots({1, 2, 2}));
  // Eqs. 10-12.
  for (int i = rs.nstar; i < rs.n; ++i) {
    EXPECT_EQ(rs.F[static_cast<std::size_t>(i)], (Poly{1}));
    EXPECT_EQ(rs.Q[static_cast<std::size_t>(i)], (Poly{1}));
  }
  EXPECT_TRUE(rs.F[static_cast<std::size_t>(rs.n)].is_zero());
}

TEST(RemainderSequence, PurePowerDetectsSingleDistinctRoot) {
  const Poly p = poly_from_integer_roots({4, 4, 4});
  const auto rs = compute_remainder_sequence(p);
  EXPECT_TRUE(rs.extended());
  EXPECT_EQ(rs.nstar, 1);
  EXPECT_EQ(rs.gcd_part, poly_from_integer_roots({4, 4}));
}

TEST(RemainderSequence, NonNormalInputThrows) {
  // x^4 + 1: F_1 = 4x^3, and F_2 = 4x * 4x^3 - 16(x^4+1) = -16 drops from
  // degree 3 straight to degree 0 -- a non-normal sequence.  (The input
  // has no real roots, but the sequence computation is purely algebraic.)
  const Poly p{1, 0, 0, 0, 1};
  EXPECT_THROW(compute_remainder_sequence(p), NonNormalSequence);
}

TEST(RemainderSequence, StepHelpersMatchFullComputation) {
  const Poly p = poly_from_integer_roots({-6, -1, 3, 8, 13});
  const auto rs = compute_remainder_sequence(p);
  for (int i = 1; i <= rs.n - 1; ++i) {
    const auto ui = static_cast<std::size_t>(i);
    BigInt q1, q0;
    quotient_coeffs(rs.F[ui - 1], rs.F[ui], q1, q0);
    EXPECT_EQ(q1, rs.Q[ui].coeff(1));
    EXPECT_EQ(q0, rs.Q[ui].coeff(0));
    const BigInt ci_sq = rs.c[ui] * rs.c[ui];
    const BigInt cp_sq = rs.c[ui - 1] * rs.c[ui - 1];
    for (int j = 0; j <= rs.n - i - 1; ++j) {
      EXPECT_EQ(next_f_coeff(rs.F[ui - 1], rs.F[ui], q1, q0, ci_sq, cp_sq,
                             static_cast<std::size_t>(j)),
                rs.F[ui + 1].coeff(static_cast<std::size_t>(j)));
    }
  }
}

TEST(RemainderSequence, RandomCharPolysAreNormal) {
  Prng rng(2024);
  for (int iter = 0; iter < 10; ++iter) {
    const auto input = paper_input(5 + rng.below(12), rng);
    const auto rs = compute_remainder_sequence(input.poly);
    EXPECT_FALSE(rs.extended())
        << "random characteristic polynomials have distinct roots a.s.";
  }
}

TEST(RemainderSequence, RejectsConstants) {
  EXPECT_THROW(compute_remainder_sequence(Poly{3}), InvalidArgument);
  EXPECT_THROW(compute_remainder_sequence(Poly{}), InvalidArgument);
}

}  // namespace
}  // namespace pr
