#include "rational/rational.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "support/error.hpp"
#include "support/prng.hpp"

namespace pr {
namespace {

TEST(Rational, NormalizationInvariants) {
  const Rational r(BigInt(6), BigInt(-8));
  EXPECT_EQ(r.num().to_int64(), -3);
  EXPECT_EQ(r.den().to_int64(), 4);
  EXPECT_EQ(Rational(BigInt(0), BigInt(-5)), Rational());
  EXPECT_EQ(Rational(BigInt(0), BigInt(-5)).den().to_int64(), 1);
  EXPECT_THROW(Rational(BigInt(1), BigInt(0)), DivisionByZero);
}

TEST(Rational, Arithmetic) {
  const Rational half(BigInt(1), BigInt(2));
  const Rational third(BigInt(1), BigInt(3));
  EXPECT_EQ(half + third, Rational(BigInt(5), BigInt(6)));
  EXPECT_EQ(half - third, Rational(BigInt(1), BigInt(6)));
  EXPECT_EQ(half * third, Rational(BigInt(1), BigInt(6)));
  EXPECT_EQ(half / third, Rational(BigInt(3), BigInt(2)));
  EXPECT_EQ(-half, Rational(BigInt(-1), BigInt(2)));
  EXPECT_EQ((-half).abs(), half);
  EXPECT_EQ(half.reciprocal(), Rational(2));
  EXPECT_THROW(Rational().reciprocal(), DivisionByZero);
  EXPECT_THROW(half / Rational(), DivisionByZero);
}

TEST(Rational, Comparisons) {
  const Rational a(BigInt(1), BigInt(3));
  const Rational b(BigInt(2), BigInt(5));
  EXPECT_LT(a, b);
  EXPECT_GT(Rational(1), b);
  EXPECT_LT(Rational(BigInt(-1), BigInt(2)), Rational());
  EXPECT_EQ(Rational(BigInt(2), BigInt(4)), Rational(BigInt(1), BigInt(2)));
}

TEST(Rational, FloorCeil) {
  EXPECT_EQ(Rational(BigInt(7), BigInt(2)).floor().to_int64(), 3);
  EXPECT_EQ(Rational(BigInt(7), BigInt(2)).ceil().to_int64(), 4);
  EXPECT_EQ(Rational(BigInt(-7), BigInt(2)).floor().to_int64(), -4);
  EXPECT_EQ(Rational(BigInt(-7), BigInt(2)).ceil().to_int64(), -3);
  EXPECT_EQ(Rational(4).floor().to_int64(), 4);
  EXPECT_EQ(Rational(4).ceil().to_int64(), 4);
}

TEST(Rational, DyadicAndToDouble) {
  const Rational d = Rational::dyadic(BigInt(3), 2);  // 3/4
  EXPECT_EQ(d, Rational(BigInt(3), BigInt(4)));
  EXPECT_DOUBLE_EQ(d.to_double(), 0.75);
  EXPECT_DOUBLE_EQ(Rational().to_double(), 0.0);
  EXPECT_DOUBLE_EQ(Rational(BigInt(-1), BigInt(3)).to_double(), -1.0 / 3.0);
  // Big numerator over small denominator.
  EXPECT_NEAR(Rational(BigInt::pow2(100), BigInt(3)).to_double(),
              std::pow(2.0, 100) / 3.0, std::pow(2.0, 60));
}

TEST(Rational, Formatting) {
  EXPECT_EQ(Rational(BigInt(1), BigInt(2)).to_string(), "1/2");
  EXPECT_EQ(Rational(BigInt(-4), BigInt(2)).to_string(), "-2");
  std::ostringstream os;
  os << Rational(BigInt(5), BigInt(-10));
  EXPECT_EQ(os.str(), "-1/2");
}

TEST(Rational, PolynomialEvaluation) {
  // p = 2x^2 - 3x + 1 at x = 1/2: 2/4 - 3/2 + 1 = 0.
  const Poly p{1, -3, 2};
  EXPECT_TRUE(eval_at_rational(p, Rational(BigInt(1), BigInt(2))).is_zero());
  EXPECT_EQ(eval_at_rational(p, Rational(BigInt(1), BigInt(3))),
            Rational(BigInt(2), BigInt(9)));
  EXPECT_TRUE(eval_at_rational(Poly{}, Rational(7)).is_zero());
}

TEST(Rational, LinearRoot) {
  EXPECT_EQ(linear_root(Poly{-3, 2}), Rational(BigInt(3), BigInt(2)));
  EXPECT_EQ(linear_root(Poly{4, -6}), Rational(BigInt(2), BigInt(3)));
  EXPECT_THROW(linear_root(Poly{1, 2, 3}), InvalidArgument);
}

TEST(Rational, RootEnclosure) {
  const auto enc = root_enclosure(BigInt(5), 3);  // (4/8, 5/8]
  EXPECT_EQ(enc.lo, Rational(BigInt(1), BigInt(2)));
  EXPECT_EQ(enc.hi, Rational(BigInt(5), BigInt(8)));
  EXPECT_EQ(enc.width(), Rational(BigInt(1), BigInt(8)));
  EXPECT_EQ(enc.midpoint(), Rational(BigInt(9), BigInt(16)));
}

TEST(Rational, RandomizedFieldLaws) {
  Prng rng(88);
  auto rnd = [&] {
    BigInt n(rng.range(-1000, 1000));
    BigInt d(rng.range(1, 1000));
    return Rational(std::move(n), std::move(d));
  };
  for (int i = 0; i < 200; ++i) {
    const Rational a = rnd(), b = rnd(), c = rnd();
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ((a + b) + c, a + (b + c));
    EXPECT_EQ(a * (b + c), a * b + a * c);
    EXPECT_EQ(a - a, Rational());
    if (!b.is_zero()) {
      EXPECT_EQ((a / b) * b, a);
    }
    EXPECT_LE(a.floor(), a.ceil());
  }
}

}  // namespace
}  // namespace pr
