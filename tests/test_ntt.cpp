// Differential and structural tests for the NTT module (modular/ntt.hpp).
//
// The load-bearing property is bit-identity: ntt_mul must equal the
// schoolbook convolution exactly, for every operand shape on both sides of
// the calibrated cutoff, at every table prime.  The structural tests pin
// the algebra the transforms rely on: the table's congruence class, the
// stored witness, and the exact multiplicative order of every root of
// unity the twiddle tables are built from.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "modular/ntt.hpp"
#include "modular/polyzp.hpp"
#include "modular/tuning.hpp"
#include "modular/zp.hpp"
#include "support/prng.hpp"

namespace pr::modular {
namespace {

constexpr std::uint64_t kSmallPrime = 1000003;  // 2-adic order 1

PolyZp random_poly(std::size_t len, const PrimeField& f, Prng& rng) {
  std::vector<Zp> c(len);
  for (std::size_t i = 0; i < len; ++i) {
    c[i] = f.from_u64(rng.next());
  }
  // Force a nonzero leading coefficient so the length is exactly len.
  if (len > 0 && c[len - 1].v == 0) c[len - 1] = f.one();
  return PolyZp(std::move(c));
}

void expect_poly_eq(const PolyZp& a, const PolyZp& b, std::uint64_t p,
                    const char* what) {
  ASSERT_EQ(a.degree(), b.degree()) << what << " at p=" << p;
  EXPECT_TRUE(a == b) << what << " at p=" << p;
}

TEST(NttTable, TablePrimesAreNttFriendly) {
  for (std::size_t i = 0; i < 12; ++i) {
    const NttModulus m = nth_modulus_info(i);
    EXPECT_EQ(m.p, nth_modulus(i));
    EXPECT_TRUE(is_prime_u64(m.p));
    EXPECT_EQ(m.p % (1ull << 20), 1u) << "slot " << i;
    EXPECT_GE(m.two_adic, 20u) << "slot " << i;
    // two_adic is exactly v_2(p - 1).
    EXPECT_EQ((m.p - 1) >> m.two_adic << m.two_adic, m.p - 1);
    EXPECT_EQ(((m.p - 1) >> m.two_adic) & 1, 1u) << "slot " << i;
    // The stored witness is the smallest non-residue, re-derivable.
    EXPECT_EQ(m.witness, find_two_adic_witness(m.p)) << "slot " << i;
    EXPECT_GE(m.witness, 3u) << "p == 1 mod 8 makes 2 a residue";
  }
}

TEST(NttTable, RootsOfUnityHaveExactOrder) {
  for (std::size_t i = 0; i < 6; ++i) {
    const NttModulus m = nth_modulus_info(i);
    NttTables& t = NttTables::for_prime(m.p);
    const PrimeField& f = t.field();
    EXPECT_EQ(t.two_adic(), m.two_adic);
    for (unsigned k : {1u, 2u, 5u, 10u, 20u}) {
      const Zp w = t.root_of_unity(k);
      // Order exactly 2^k: w^(2^k) == 1 but w^(2^(k-1)) == -1.
      EXPECT_EQ(f.to_u64(f.pow(w, 1ull << k)), 1u) << "p=" << m.p;
      EXPECT_EQ(f.to_u64(f.pow(w, 1ull << (k - 1))), m.p - 1)
          << "p=" << m.p << " k=" << k;
    }
  }
}

TEST(NttTable, RegistryIsKeyedByPrimeValue) {
  // Two distinct primes must never share tables, no matter what table
  // slots they occupy (regression for index-keyed caching).
  const std::uint64_t p0 = nth_modulus(0);
  const std::uint64_t p1 = nth_modulus(1);
  NttTables& t0 = NttTables::for_prime(p0);
  NttTables& t1 = NttTables::for_prime(p1);
  EXPECT_NE(&t0, &t1);
  EXPECT_EQ(t0.field().prime(), p0);
  EXPECT_EQ(t1.field().prime(), p1);
  // Same prime always resolves to the same instance.
  EXPECT_EQ(&t0, &NttTables::for_prime(p0));
}

TEST(NttTransform, ForwardInverseRoundTrip) {
  Prng rng(0xabcdef12345ull);
  NttTables& t = NttTables::for_prime(nth_modulus(0));
  const PrimeField& f = t.field();
  for (std::size_t n : {2u, 4u, 8u, 32u, 128u, 1024u}) {
    const NttPlan& plan = t.plan(n);
    std::vector<Zp> a(n);
    for (Zp& x : a) x = f.from_u64(rng.next());
    std::vector<Zp> orig = a;
    ntt_forward(a, plan, f);
    ntt_inverse(a, plan, f);
    EXPECT_EQ(a, orig) << "n=" << n;
  }
}

TEST(NttMul, MatchesSchoolbookAcrossSizesAndPrimes) {
  Prng rng(0x5eed7701ull);
  // Sizes straddling the cutoff (profitability flips around length ~32)
  // plus non-powers of two and asymmetric shapes.
  const std::size_t sizes[][2] = {{1, 1},  {2, 3},   {7, 5},    {15, 17},
                                  {16, 16}, {31, 33}, {32, 32},  {33, 100},
                                  {64, 64}, {100, 3}, {129, 127}, {256, 256}};
  for (std::size_t pi = 0; pi < 8; ++pi) {
    const PrimeField f = PrimeField::trusted(nth_modulus(pi));
    for (const auto& s : sizes) {
      const PolyZp a = random_poly(s[0], f, rng);
      const PolyZp b = random_poly(s[1], f, rng);
      expect_poly_eq(ntt_mul(a, b, f), a.mul_schoolbook(b, f), f.prime(),
                     "ntt_mul vs schoolbook");
    }
  }
}

TEST(NttMul, SquareMatchesSchoolbook) {
  Prng rng(0x12345ull);
  const PrimeField f = PrimeField::trusted(nth_modulus(0));
  for (std::size_t len : {5u, 33u, 64u, 200u}) {
    const PolyZp a = random_poly(len, f, rng);
    expect_poly_eq(a.sqr(f), a.mul_schoolbook(a, f), f.prime(), "sqr");
  }
}

TEST(NttMul, ZeroAndConstantOperands) {
  const PrimeField f = PrimeField::trusted(nth_modulus(0));
  Prng rng(0x777ull);
  const PolyZp zero;
  const PolyZp one(std::vector<Zp>{f.one()});
  const PolyZp big = random_poly(100, f, rng);
  EXPECT_TRUE(ntt_mul(zero, big, f).is_zero());
  EXPECT_TRUE(ntt_mul(big, zero, f).is_zero());
  expect_poly_eq(ntt_mul(one, big, f), big, f.prime(), "1 * a");
  expect_poly_eq(ntt_mul(big, one, f), big, f.prime(), "a * 1");
}

TEST(NttMul, SmallTwoAdicPrimeFallsBackCorrectly) {
  // kSmallPrime has v_2(p-1) = 1: no transforms above length 2 exist, so
  // even above-cutoff products must silently take schoolbook.
  const PrimeField f(kSmallPrime);
  EXPECT_EQ(NttTables::for_prime(kSmallPrime).two_adic(), 1u);
  Prng rng(0x999ull);
  const PolyZp a = random_poly(150, f, rng);
  const PolyZp b = random_poly(97, f, rng);
  expect_poly_eq(a.mul(b, f), a.mul_schoolbook(b, f), f.prime(),
                 "small-2-adic fallback");
}

TEST(NttMul, DispatchAgreesWithCostModel) {
  // This test pins the compiled-default cost model; a startup-applied
  // calibration profile may legitimately move the crossover, so run it
  // under default tuning and restore whatever was active.
  const ModularTuning saved = modular_tuning();
  reset_modular_tuning();
  // mul() must route exactly per ntt_profitable, so thread count or call
  // site can never change which kernel runs.
  EXPECT_FALSE(ntt_profitable(1, 1));
  EXPECT_FALSE(ntt_profitable(8, 8));
  EXPECT_FALSE(ntt_profitable(4, 1000));  // tiny operand never profits
  EXPECT_TRUE(ntt_profitable(256, 256));
  EXPECT_TRUE(ntt_profitable(512, 512));
  // Monotone in the square case above the crossover.
  bool was = false;
  for (std::size_t l = 16; l <= 1024; l *= 2) {
    const bool now = ntt_profitable(l, l);
    EXPECT_TRUE(now || !was) << "profitability regressed at " << l;
    was = now;
  }
  set_modular_tuning(saved);
}

TEST(NttMul, ConvSizeIsNextPowerOfTwo) {
  EXPECT_EQ(ntt_conv_size(1, 1), 1u);
  EXPECT_EQ(ntt_conv_size(3, 3), 8u);
  EXPECT_EQ(ntt_conv_size(64, 64), 128u);
  EXPECT_EQ(ntt_conv_size(65, 64), 128u);
  EXPECT_EQ(ntt_conv_size(65, 65), 256u);
}

}  // namespace
}  // namespace pr::modular
