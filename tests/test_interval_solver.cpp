#include "core/interval_solver.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/scaled_point.hpp"
#include "gen/classic_polys.hpp"
#include "gen/matrix_polys.hpp"
#include "poly/bounds.hpp"
#include "support/error.hpp"
#include "support/prng.hpp"

namespace pr {
namespace {

/// Brute-force oracle: ceil(2^mu x) for the unique root x of p in
/// (lo/2^mu, hi/2^mu), found by sign bisection at very high precision.
BigInt oracle(const Poly& p, const BigInt& lo, const BigInt& hi, int s_lo,
              std::size_t mu) {
  const std::size_t w = mu + 64;
  BigInt a = lo << 64, b = hi << 64;
  while (b - a > BigInt(1)) {
    BigInt mid = a + ((b - a) >> 1);
    const int s = p.sign_at_scaled(mid, w);
    if (s == 0) return ceil_shift(mid, 64);
    if (s == s_lo) {
      a = mid;
    } else {
      b = mid;
    }
  }
  return ceil_shift(b, 64);
}

struct Case {
  Poly p;
  BigInt lo, hi;  // unit interval at scale 0 with a sign change
  int s_lo, s_hi;
};

/// Scans [-bound, bound] for unit intervals with a sign change; `bound`
/// must cover all roots of p.
std::vector<Case> integer_bracket_cases(const Poly& p, long long bound) {
  std::vector<Case> out;
  for (long long t = -bound; t < bound; ++t) {
    const int s1 = p.sign_at(BigInt(t));
    const int s2 = p.sign_at(BigInt(t + 1));
    if (s1 * s2 < 0) out.push_back({p, BigInt(t), BigInt(t + 1), s1, s2});
  }
  return out;
}

class SolverModes : public ::testing::TestWithParam<
                        IntervalSolverConfig::Mode> {};

TEST_P(SolverModes, AgreesWithOracleOnCharPolyRoots) {
  Prng rng(5);
  IntervalSolverConfig cfg;
  cfg.mode = GetParam();
  for (int trial = 0; trial < 3; ++trial) {
    const auto input = paper_input(8 + 3 * trial, rng);
    for (const std::size_t mu : {4u, 17u, 64u}) {
      for (const auto& c : integer_bracket_cases(input.poly, 64)) {
        IntervalStats st;
        const BigInt got = solve_isolated_interval(
            c.p, c.lo << mu, c.hi << mu, c.s_lo, c.s_hi, mu, cfg, &st);
        EXPECT_EQ(got, oracle(c.p, c.lo << mu, c.hi << mu, c.s_lo, mu));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, SolverModes,
    ::testing::Values(IntervalSolverConfig::Mode::kHybrid,
                      IntervalSolverConfig::Mode::kBisectionNewton,
                      IntervalSolverConfig::Mode::kRegulaFalsi,
                      IntervalSolverConfig::Mode::kPureBisection),
    [](const auto& param_info) {
      switch (param_info.param) {
        case IntervalSolverConfig::Mode::kHybrid: return "Hybrid";
        case IntervalSolverConfig::Mode::kBisectionNewton:
          return "BisectNewton";
        case IntervalSolverConfig::Mode::kRegulaFalsi: return "RegulaFalsi";
        default: return "PureBisection";
      }
    });

TEST(IntervalSolver, SingleCandidateNeedsNoEvaluation) {
  IntervalStats st;
  IntervalSolverConfig cfg;
  // (lo, hi) with hi = lo+1: the only possible answer is hi.
  const Poly p{-1, 0, 2};  // sqrt(1/2) ~ 0.707, between 0 and 1 at mu=0
  const BigInt got =
      solve_isolated_interval(p, BigInt(0), BigInt(1), -1, 1, 0, cfg, &st);
  EXPECT_EQ(got.to_int64(), 1);
  EXPECT_EQ(st.total_evals(), 0u);
}

TEST(IntervalSolver, ExactDyadicRootDetected) {
  // Root exactly 1/2 inside (0, 1) at mu = 4: answer ceil(16 * 0.5) = 8.
  const Poly p{-1, 2};
  IntervalStats st;
  IntervalSolverConfig cfg;
  const BigInt got = solve_isolated_interval(p, BigInt(0), BigInt(16), -1, 1,
                                             4, cfg, &st);
  EXPECT_EQ(got.to_int64(), 8);
}

TEST(IntervalSolver, RootJustAboveGridPoint) {
  // root = (2^20 + 1) / 2^25: 2^5 x = 1 + 2^-20, so k = ceil(2^5 x) = 2.
  const Poly p{-(1LL << 20) - 1, 1LL << 25};
  IntervalStats st;
  IntervalSolverConfig cfg;
  const BigInt got =
      solve_isolated_interval(p, BigInt(0), BigInt(2), -1, 1, 5, cfg, &st);
  EXPECT_EQ(got.to_int64(), 2);
}

TEST(IntervalSolver, RootJustBelowGridPoint) {
  // root = (2^20 - 1) / 2^25 at mu = 5: still k = 1.
  const Poly p{-(1LL << 20) + 1, 1LL << 25};
  IntervalStats st;
  IntervalSolverConfig cfg;
  const BigInt got =
      solve_isolated_interval(p, BigInt(0), BigInt(2), -1, 1, 5, cfg, &st);
  EXPECT_EQ(got.to_int64(), 1);
}

TEST(IntervalSolver, DecreasingPolynomial) {
  // -x + 1 root at 1 within (0, 2), s_lo = +, s_hi = -.
  const Poly p{1, -1};
  IntervalStats st;
  IntervalSolverConfig cfg;
  const BigInt got = solve_isolated_interval(p, BigInt(0) << 3, BigInt(2) << 3,
                                             1, -1, 3, cfg, &st);
  EXPECT_EQ(got.to_int64(), 8);
}

TEST(IntervalSolver, HugePrecision) {
  // sqrt(2) to 300 bits: verify the square of the result brackets 2.
  const Poly p{-2, 0, 1};
  const std::size_t mu = 300;
  IntervalStats st;
  IntervalSolverConfig cfg;
  const BigInt got = solve_isolated_interval(p, BigInt(1) << mu,
                                             BigInt(2) << mu, -1, 1, mu, cfg,
                                             &st);
  // (got-1)^2 < 2*2^(2mu) <= got^2.
  EXPECT_LT((got - BigInt(1)) * (got - BigInt(1)), BigInt(2) << (2 * mu));
  EXPECT_GE(got * got, BigInt(2) << (2 * mu));
}

TEST(IntervalSolver, HybridBeatsPureBisectionOnEvaluations) {
  const Poly p = wilkinson(12).derivative();  // 11 non-integer real roots
  const std::size_t mu = 120;
  std::uint64_t evals[2];
  int idx = 0;
  for (auto mode : {IntervalSolverConfig::Mode::kHybrid,
                    IntervalSolverConfig::Mode::kPureBisection}) {
    IntervalSolverConfig cfg;
    cfg.mode = mode;
    IntervalStats st;
    for (const auto& c : integer_bracket_cases(p, 16)) {
      solve_isolated_interval(c.p, c.lo << mu, c.hi << mu, c.s_lo, c.s_hi,
                              mu, cfg, &st);
    }
    evals[idx++] = st.total_evals();
  }
  EXPECT_LT(evals[0], evals[1])
      << "hybrid must evaluate less than pure bisection at high precision";
}

TEST(IntervalSolver, SieveShinesWhenRootHugsAnEndpoint) {
  // The double-exponential sieve exists for the worst case where the root
  // sits pathologically close to one end of a huge isolating interval
  // (paper Sec 2.2 / Eq. 38).  Root at 1/2^40 inside (0, 2^20).
  const Poly p{-1, 1LL << 40};  // root 2^-40
  const std::size_t mu = 60;
  const BigInt lo(0);
  const BigInt hi = BigInt(1) << (20 + mu);
  std::uint64_t evals_hybrid = 0, evals_nosieve = 0;
  for (const bool sieve : {true, false}) {
    IntervalSolverConfig cfg;
    cfg.mode = sieve ? IntervalSolverConfig::Mode::kHybrid
                     : IntervalSolverConfig::Mode::kBisectionNewton;
    IntervalStats st;
    const BigInt got =
        solve_isolated_interval(p, lo, hi, -1, 1, mu, cfg, &st);
    EXPECT_EQ(got, BigInt(1) << 20);  // ceil(2^60 * 2^-40)
    (sieve ? evals_hybrid : evals_nosieve) = st.total_evals();
  }
  // Bisection alone needs ~60 halvings to get from width 2^20 down to the
  // root's 2^-40 neighbourhood; the sieve jumps there double-
  // exponentially.
  EXPECT_LT(evals_hybrid + 15, evals_nosieve)
      << "hybrid=" << evals_hybrid << " nosieve=" << evals_nosieve;
}

TEST(IntervalSolver, GuardBitsExtremes) {
  const Poly p{-2, 0, 1};
  for (std::size_t guard : {0u, 1u, 100u}) {
    IntervalSolverConfig cfg;
    cfg.guard_bits = guard;
    IntervalStats st;
    const BigInt got = solve_isolated_interval(
        p, BigInt(1) << 20, BigInt(2) << 20, -1, 1, 20, cfg, &st);
    // ceil(2^20 sqrt(2)) = 1482911.
    EXPECT_EQ(got.to_int64(), 1482911) << "guard=" << guard;
  }
}

TEST(IntervalSolver, EvaluationsRespectWorstCaseBound) {
  // Eq. (38): I(X, d) ~ 0.5 log^2 X + log(10 d^2) + O(log X) evaluations
  // per interval in the worst case.  Check the hybrid never exceeds a
  // generous constant multiple of that bound across a sweep.
  Prng rng(424242);
  for (int trial = 0; trial < 4; ++trial) {
    const auto input = paper_input(8 + 4 * trial, rng);
    const std::size_t mu = 100;
    IntervalSolverConfig cfg;
    const double d = input.poly.degree();
    const double x = static_cast<double>(root_bound_pow2(input.poly) + mu);
    const double bound_per_interval =
        0.5 * std::log2(x) * std::log2(x) + std::log2(10 * d * d) +
        8 * std::log2(x) + 20;
    for (const auto& c : integer_bracket_cases(input.poly, 64)) {
      IntervalStats st;
      (void)solve_isolated_interval(c.p, c.lo << mu, c.hi << mu, c.s_lo,
                                    c.s_hi, mu, cfg, &st);
      EXPECT_LE(static_cast<double>(st.total_evals()), bound_per_interval)
          << "n=" << input.poly.degree();
    }
  }
}

TEST(IntervalSolver, RejectsBadArguments) {
  IntervalSolverConfig cfg;
  const Poly p{-1, 0, 2};
  EXPECT_THROW(solve_isolated_interval(p, BigInt(1), BigInt(0), -1, 1, 0,
                                       cfg, nullptr),
               InvalidArgument);
  EXPECT_THROW(solve_isolated_interval(p, BigInt(0), BigInt(1), 1, 1, 0,
                                       cfg, nullptr),
               InvalidArgument);
  EXPECT_THROW(solve_isolated_interval(p, BigInt(0), BigInt(1), 0, -1, 0,
                                       cfg, nullptr),
               InvalidArgument);
}

TEST(IntervalSolver, StatsAccumulate) {
  IntervalStats a, b;
  a.sieve_evals = 2;
  a.case2c = 1;
  b.sieve_evals = 3;
  b.newton_iters = 4;
  a += b;
  EXPECT_EQ(a.sieve_evals, 5u);
  EXPECT_EQ(a.newton_iters, 4u);
  EXPECT_EQ(a.case2c, 1u);
}

}  // namespace
}  // namespace pr
