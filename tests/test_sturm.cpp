#include "poly/sturm.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "gen/classic_polys.hpp"
#include "support/prng.hpp"

namespace pr {
namespace {

TEST(Sturm, CountsDistinctRealRoots) {
  EXPECT_EQ(SturmChain(poly_from_integer_roots({-3, -1, 0, 2, 7}))
                .distinct_real_roots(),
            5);
  // x^2 + 1: no real roots.
  EXPECT_EQ(SturmChain(Poly{1, 0, 1}).distinct_real_roots(), 0);
  // x^3 - x: three real roots.
  EXPECT_EQ(SturmChain(Poly{0, -1, 0, 1}).distinct_real_roots(), 3);
  // (x^2+1)(x-1): one real root.
  EXPECT_EQ(SturmChain(Poly{1, 0, 1} * Poly{-1, 1}).distinct_real_roots(), 1);
}

TEST(Sturm, RepeatedRootsCountOnce) {
  const Poly p = poly_from_integer_roots({1, 1, 2, 2, 2});
  EXPECT_EQ(SturmChain(p).distinct_real_roots(), 2);
}

TEST(Sturm, HalfOpenSemanticsAtExactRoots) {
  const SturmChain sc(poly_from_integer_roots({-3, -1, 0, 2, 7}));
  // (a, b] includes b, excludes a.
  EXPECT_EQ(sc.count_half_open(BigInt(-3), BigInt(7), 0), 4);
  EXPECT_EQ(sc.count_half_open(BigInt(-4), BigInt(7), 0), 5);
  EXPECT_EQ(sc.count_half_open(BigInt(-4), BigInt(6), 0), 4);
  EXPECT_EQ(sc.count_half_open(BigInt(0), BigInt(0), 0), 0);
  EXPECT_EQ(sc.count_half_open(BigInt(-1), BigInt(0), 0), 1);
}

TEST(Sturm, CountBelowIsStrict) {
  const SturmChain sc(poly_from_integer_roots({-3, -1, 0, 2, 7}));
  EXPECT_EQ(sc.count_below(BigInt(0), 0), 2);
  EXPECT_EQ(sc.count_below(BigInt(1), 0), 3);
  EXPECT_EQ(sc.count_below(BigInt(-3), 0), 0);
  EXPECT_EQ(sc.count_below(BigInt(100), 0), 5);
}

TEST(Sturm, ScaledQueries) {
  // roots +-1/2 of 4x^2 - 1.
  const SturmChain sc(Poly{-1, 0, 4});
  EXPECT_EQ(sc.count_half_open(BigInt(-2), BigInt(2), 1), 2);   // (-1, 1]
  // (-1/2, 1/2]: excludes the root at -1/2, includes the one at +1/2.
  EXPECT_EQ(sc.count_half_open(BigInt(-1), BigInt(1), 1), 1);
  EXPECT_EQ(sc.count_half_open(BigInt(0), BigInt(1), 1), 1);
  EXPECT_EQ(sc.count_below(BigInt(1), 1), 1);   // strictly below 1/2
  EXPECT_EQ(sc.count_below(BigInt(2), 1), 2);
}

TEST(Sturm, OneSidedSignLimits) {
  const Poly p{-1, 0, 4};  // roots +-1/2
  EXPECT_GT(sign_right_limit(p, BigInt(1), 1), 0);
  EXPECT_LT(sign_left_limit(p, BigInt(1), 1), 0);
  EXPECT_LT(sign_right_limit(p, BigInt(-1), 1), 0);
  EXPECT_GT(sign_left_limit(p, BigInt(-1), 1), 0);
  // Non-root points: both limits equal the sign.
  EXPECT_EQ(sign_right_limit(p, BigInt(0), 0), -1);
  EXPECT_EQ(sign_left_limit(p, BigInt(0), 0), -1);
}

TEST(Sturm, SignLimitsAtRepeatedRoot) {
  // (x-1)^2: touches zero, same sign on both sides.
  const Poly p = poly_from_integer_roots({1, 1});
  EXPECT_GT(sign_right_limit(p, BigInt(1), 0), 0);
  EXPECT_GT(sign_left_limit(p, BigInt(1), 0), 0);
  // (x-1)^3: genuine sign change.
  const Poly q = poly_from_integer_roots({1, 1, 1});
  EXPECT_GT(sign_right_limit(q, BigInt(1), 0), 0);
  EXPECT_LT(sign_left_limit(q, BigInt(1), 0), 0);
}

TEST(Sturm, VariationsAtInfinities) {
  const SturmChain sc(poly_from_integer_roots({-1, 1}));
  EXPECT_EQ(sc.variations_at_neg_inf() - sc.variations_at_pos_inf(), 2);
}

TEST(Sturm, WilkinsonCounts) {
  const Poly p = wilkinson(15);
  const SturmChain sc(p);
  EXPECT_EQ(sc.distinct_real_roots(), 15);
  EXPECT_EQ(sc.count_half_open(BigInt(0), BigInt(15), 0), 15);
  EXPECT_EQ(sc.count_half_open(BigInt(5), BigInt(10), 0), 5);
  EXPECT_EQ(sc.count_below(BigInt(8), 0), 7);
}

TEST(Sturm, ChebyshevRootsAllInUnitInterval) {
  for (int n : {3, 8, 13}) {
    const SturmChain sc(chebyshev_t(n));
    EXPECT_EQ(sc.distinct_real_roots(), n);
    EXPECT_EQ(sc.count_half_open(BigInt(-1), BigInt(1), 0), n);
  }
}

TEST(Sturm, RandomizedCrossCheckWithKnownRoots) {
  Prng rng(99);
  for (int iter = 0; iter < 30; ++iter) {
    std::vector<long long> roots;
    const int k = 2 + static_cast<int>(rng.below(6));
    for (int i = 0; i < k; ++i) roots.push_back(rng.range(-40, 40));
    std::sort(roots.begin(), roots.end());
    roots.erase(std::unique(roots.begin(), roots.end()), roots.end());
    const SturmChain sc(poly_from_integer_roots(roots));
    EXPECT_EQ(sc.distinct_real_roots(), static_cast<int>(roots.size()));
    // Count in a random half-open window and compare with ground truth.
    const long long a = rng.range(-50, 50);
    const long long b = a + static_cast<long long>(rng.below(100));
    int expected = 0;
    for (long long r : roots) expected += (r > a && r <= b);
    EXPECT_EQ(sc.count_half_open(BigInt(a), BigInt(b), 0), expected)
        << "window (" << a << ", " << b << "]";
  }
}

}  // namespace
}  // namespace pr
