// The root-isolation subsystem (src/isolate/): Graeffe/Pellet root-radii
// estimation, band-restricted Descartes isolation, QIR refinement, the
// kRadii finder strategy (sequential + parallel, bit-identical to the
// paper path on its domain), and the independent isolation certificate.
#include "isolate/isolate.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "core/refine.hpp"
#include "gen/classic_polys.hpp"
#include "gen/hard_polys.hpp"
#include "gen/matrix_polys.hpp"
#include "isolate/root_radii.hpp"
#include "poly/sturm.hpp"
#include "sched/task_pool.hpp"
#include "support/error.hpp"
#include "support/prng.hpp"
#include "verify/isolate_certificate.hpp"

namespace pr {
namespace {

using isolate::estimate_root_radii;
using isolate::graeffe_iteration;
using isolate::isolate_in_band;
using isolate::isolate_roots_radii;
using isolate::isqrt_floor;
using isolate::QirConfig;
using isolate::QirStats;
using isolate::RadiiConfig;

RootFinderConfig radii_config(std::size_t mu = 53) {
  RootFinderConfig cfg;
  cfg.mu_bits = mu;
  cfg.strategy = FinderStrategy::kRadii;
  return cfg;
}

void expect_same_report(const RootReport& a, const RootReport& b,
                        const char* label) {
  EXPECT_EQ(a.roots, b.roots) << label;
  EXPECT_EQ(a.multiplicities, b.multiplicities) << label;
  EXPECT_EQ(a.mu, b.mu) << label;
  EXPECT_EQ(a.degree, b.degree) << label;
  EXPECT_EQ(a.distinct_roots, b.distinct_roots) << label;
}

// --- root radii -------------------------------------------------------------

TEST(RootRadii, IsqrtFloorExactAndBetween) {
  EXPECT_EQ(isqrt_floor(BigInt(0)), BigInt(0));
  EXPECT_EQ(isqrt_floor(BigInt(1)), BigInt(1));
  EXPECT_EQ(isqrt_floor(BigInt(2)), BigInt(1));
  EXPECT_EQ(isqrt_floor(BigInt(3)), BigInt(1));
  EXPECT_EQ(isqrt_floor(BigInt(4)), BigInt(2));
  EXPECT_EQ(isqrt_floor(BigInt(99)), BigInt(9));
  EXPECT_EQ(isqrt_floor(BigInt(100)), BigInt(10));
  // Exhaustive floor invariant r^2 <= x < (r+1)^2 on a big random value.
  Prng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    BigInt x = BigInt::pow2(130) + BigInt(static_cast<long long>(rng.below(1u << 30)));
    const BigInt r = isqrt_floor(x);
    EXPECT_LE(r * r, x);
    EXPECT_GT((r + BigInt(1)) * (r + BigInt(1)), x);
  }
}

TEST(RootRadii, GraeffeSquaresTheRoots) {
  // (x-1)(x-2): the iterate must vanish at 1 and 4.
  const Poly p = poly_from_integer_roots({1, 2});
  const Poly q = graeffe_iteration(p);
  EXPECT_EQ(q.degree(), 2);
  EXPECT_GT(q.leading().signum(), 0);
  EXPECT_EQ(q.eval(BigInt(1)).signum(), 0);
  EXPECT_EQ(q.eval(BigInt(4)).signum(), 0);
  // Odd degree keeps the leading coefficient positive too.
  const Poly odd = poly_from_integer_roots({0, 2, -2});
  const Poly qo = graeffe_iteration(odd);
  EXPECT_EQ(qo.degree(), 3);
  EXPECT_GT(qo.leading().signum(), 0);
  EXPECT_EQ(qo.eval(BigInt(0)).signum(), 0);
  EXPECT_EQ(qo.eval(BigInt(4)).signum(), 0);
}

TEST(RootRadii, GraeffeIteratedOnWilkinson) {
  Poly q = wilkinson(6);
  for (int i = 0; i < 2; ++i) q = graeffe_iteration(q);
  // After two iterations the roots are r^4 for r = 1..6.
  for (long long r = 1; r <= 6; ++r) {
    EXPECT_EQ(q.eval(BigInt(r * r * r * r)).signum(), 0) << r;
  }
}

TEST(RootRadii, AnnuliCountsAndContainment) {
  // Roots of magnitude 1, 100 and 10000: three well-separated annuli.
  const Poly p = poly_from_integer_roots({1, -100, 10000});
  RadiiConfig cfg;
  const auto r = estimate_root_radii(p, cfg);
  ASSERT_EQ(r.annuli.size(), 3u);
  const BigInt scale = BigInt::pow2(r.guard_bits);
  const long long mags[] = {1, 100, 10000};
  int total = 0;
  for (std::size_t i = 0; i < r.annuli.size(); ++i) {
    const auto& a = r.annuli[i];
    EXPECT_EQ(a.count, 1);
    total += a.count;
    // inner/2^g <= |root| <= outer/2^g (outward dyadic rounding).
    EXPECT_LE(a.inner, BigInt(mags[i]) * scale);
    EXPECT_GE(a.outer, BigInt(mags[i]) * scale);
    if (i > 0) EXPECT_LT(r.annuli[i - 1].outer, a.outer);
  }
  EXPECT_EQ(total, p.degree());
  EXPECT_GT(r.pellet_tests, 0);
  EXPECT_GE(r.certified_splits, 2);  // at least the inner and outer bounds
}

TEST(RootRadii, ComplexRootsAreCounted) {
  // x^2 + 1: both roots on |z| = 1; one annulus, count 2.
  const Poly p{1, 0, 1};
  const auto r = estimate_root_radii(p, RadiiConfig{});
  int total = 0;
  for (const auto& a : r.annuli) total += a.count;
  EXPECT_EQ(total, 2);
  const BigInt one = BigInt::pow2(r.guard_bits);
  ASSERT_FALSE(r.annuli.empty());
  EXPECT_LE(r.annuli.front().inner, one);
  EXPECT_GE(r.annuli.back().outer, one);
}

TEST(RootRadii, NonSquarefreeInputsAreFine) {
  // (x-2)^3: count 3 in the annulus around |z| = 2 (multiplicity included).
  const Poly p = Poly{-2, 1} * Poly{-2, 1} * Poly{-2, 1};
  const auto r = estimate_root_radii(p, RadiiConfig{});
  int total = 0;
  for (const auto& a : r.annuli) total += a.count;
  EXPECT_EQ(total, 3);
}

// --- band-restricted Descartes ----------------------------------------------

TEST(Isolate, BandIsolatesInteriorAndEndpointRoots) {
  // Roots 1 and 3 inside [0, 4]; band endpoints 0 and 4 are roots of
  // x(x-1)(x-3)(x-4) but the band version gets them as exact cells.
  const Poly inner = poly_from_integer_roots({1, 3});
  auto cells = isolate_in_band(inner, BigInt(0), BigInt(4), 0);
  ASSERT_EQ(cells.size(), 2u);
  for (const auto& c : cells) {
    if (c.exact) {
      EXPECT_EQ(inner.sign_at_scaled(c.lo, c.scale), 0);
    } else {
      EXPECT_EQ(c.s_lo * c.s_hi, -1);
      EXPECT_LT(c.lo, c.hi);
    }
  }
  const Poly with_ends = poly_from_integer_roots({0, 1, 3, 4});
  cells = isolate_in_band(with_ends, BigInt(0), BigInt(4), 0);
  ASSERT_EQ(cells.size(), 4u);
  EXPECT_TRUE(cells.front().exact);
  EXPECT_EQ(cells.front().lo, BigInt(0));
  EXPECT_TRUE(cells.back().exact);
  EXPECT_EQ(cells.back().lo, BigInt(4) << cells.back().scale);
}

TEST(Isolate, RepeatedRootExceedsDepthBound) {
  // A repeated root at a dyadic subdivision point is peeled exactly (one
  // cell, no divergence)...
  const Poly dyadic = Poly{-1, 1} * Poly{-1, 1};  // (x-1)^2
  const auto cells = isolate_in_band(dyadic, BigInt(0), BigInt(2), 0);
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_TRUE(cells.front().exact);
  // ...but a non-dyadic repeated root can never be separated, and the
  // squarefree depth bound converts the divergence into a diagnostic.
  const Poly p = Poly{-2, 0, 1} * Poly{-2, 0, 1};  // (x^2 - 2)^2
  EXPECT_THROW(isolate_in_band(p, BigInt(0), BigInt(2), 0), InvalidArgument);
}

TEST(Isolate, FullPipelineHandlesZeroRoot) {
  // x(x-1)(x+1): zero root becomes an exact cell, the others isolate
  // against the stripped polynomial.
  const Poly p = poly_from_integer_roots({0, 1, -1});
  const auto out = isolate_roots_radii(p, RadiiConfig{});
  ASSERT_EQ(out.cells.size(), 3u);
  EXPECT_EQ(out.stripped.degree(), 2);
  bool has_zero = false;
  for (const auto& c : out.cells) {
    if (c.exact && c.lo.is_zero()) has_zero = true;
  }
  EXPECT_TRUE(has_zero);
  // Cells are sorted left to right.
  for (std::size_t i = 1; i < out.cells.size(); ++i) {
    EXPECT_TRUE(isolate::cell_less(out.cells[i - 1], out.cells[i]));
  }
}

TEST(Isolate, ComplexRootsProduceNoCells) {
  const Poly p{-1, 0, 0, 1};  // x^3 - 1: one real root
  const auto out = isolate_roots_radii(p, RadiiConfig{});
  EXPECT_EQ(out.cells.size(), 1u);
  const Poly q{1, 0, 1};  // x^2 + 1: none
  EXPECT_TRUE(isolate_roots_radii(q, RadiiConfig{}).cells.empty());
}

TEST(Isolate, CertificateValidOnGenerators) {
  Prng rng(42);
  const Poly clustered = clustered_squarefree(6, 8, 3, rng);
  auto cert = certify_isolation(clustered);
  EXPECT_TRUE(cert.valid) << cert.to_string();
  EXPECT_EQ(cert.distinct_real_roots, 6);

  const Poly mign = mignotte(9, 5);
  cert = certify_isolation(mign);
  EXPECT_TRUE(cert.valid) << cert.to_string();

  for (int degree : {5, 9, 14}) {
    const Poly p = random_squarefree_poly(degree, 12, rng);
    cert = certify_isolation(p);
    EXPECT_TRUE(cert.valid) << "degree " << degree << "\n"
                            << cert.to_string();
  }
}

TEST(Isolate, CertificateRejectsTamperedCells) {
  const Poly p = poly_from_integer_roots({1, 3, 5});
  auto out = isolate_roots_radii(p, RadiiConfig{});
  ASSERT_EQ(out.cells.size(), 3u);
  // Drop a cell: totality fails.
  auto dropped = out.cells;
  dropped.pop_back();
  EXPECT_FALSE(certify_cells_isolated(p, dropped).valid);
  // Duplicate an exact cell: disjointness fails.
  auto duped = out.cells;
  duped.push_back(duped.back());
  EXPECT_FALSE(certify_cells_isolated(p, duped).valid);
  // Non-squarefree input is rejected outright.
  const Poly sq = Poly{-1, 1} * Poly{-1, 1};
  EXPECT_FALSE(certify_cells_isolated(sq, out.cells).valid);
}

// --- QIR --------------------------------------------------------------------

TEST(Qir, SolveSqrtTwoToHighPrecision) {
  const Poly p{-2, 0, 1};
  QirStats stats;
  const std::size_t mu = 200;
  const BigInt k = isolate::qir_solve(p, BigInt(1), BigInt(2), -1, 1, 0, mu,
                                      QirConfig{}, &stats);
  // (k-1)^2 < 2 * 2^(2mu) <= k^2: the ceiling of 2^mu sqrt(2).
  EXPECT_LT((k - BigInt(1)) * (k - BigInt(1)), BigInt(2) << (2 * mu));
  EXPECT_GE(k * k, BigInt(2) << (2 * mu));
  EXPECT_GT(stats.iters, 0u);
  EXPECT_GT(stats.evals, 0u);
}

TEST(Qir, QuadraticConvergenceDoublesTheGrid) {
  // Successful secant steps double log2 N; reaching a large grid within
  // one deep refinement is the observable quadratic-convergence signature.
  const Poly p{-2, 0, 1};
  QirStats stats;
  QirConfig cfg;
  isolate::qir_solve(p, BigInt(1), BigInt(2), -1, 1, 0, 2000, cfg, &stats);
  EXPECT_GT(stats.successes, 0u);
  EXPECT_GE(stats.max_subdiv_log2, 4 * cfg.initial_subdiv_log2);
}

TEST(Qir, RefineMatchesIntervalSolverBitForBit) {
  Prng rng(2026);
  const auto input = paper_input(12, rng);
  RootFinderConfig lo_cfg;
  lo_cfg.mu_bits = 8;
  const auto lo = find_real_roots(input.poly, lo_cfg);
  for (const auto& k : lo.roots) {
    EXPECT_EQ(isolate::refine_root_qir(input.poly, k, 8, 120),
              refine_root(input.poly, k, 8, 120));
  }
}

TEST(Qir, ExactRootStaysExact) {
  const Poly p = poly_from_integer_roots({3, 7});
  EXPECT_EQ(isolate::refine_root_qir(p, BigInt(3) << 4, 4, 10),
            BigInt(3) << 10);
  EXPECT_EQ(isolate::refine_root_qir(p, BigInt(3) << 4, 4, 4),
            BigInt(3) << 4);
}

TEST(Qir, RejectsNonIsolatingCell) {
  const Poly p{-2, 0, 1};
  EXPECT_THROW(isolate::refine_root_qir(p, BigInt(100) << 4, 4, 10),
               InvalidArgument);
  EXPECT_THROW(isolate::refine_root_qir(p, BigInt(1), 10, 5),
               InvalidArgument);
}

// --- the kRadii strategy, sequential ----------------------------------------

TEST(IsolateStrategy, BitIdenticalToPaperOnInterleavingWorkloads) {
  Prng rng(11);
  for (std::size_t n : {6u, 10u, 14u}) {
    const auto input = paper_input(n, rng);
    RootFinderConfig paper_cfg;
    paper_cfg.mu_bits = 53;
    const auto paper = find_real_roots(input.poly, paper_cfg);
    const auto radii = find_real_roots(input.poly, radii_config(53));
    expect_same_report(paper, radii, "paper_input");
  }
  const Poly w = wilkinson(15);
  RootFinderConfig paper_cfg;
  const auto paper = find_real_roots(w, paper_cfg);
  const auto radii = find_real_roots(w, radii_config());
  expect_same_report(paper, radii, "wilkinson(15)");
}

TEST(IsolateStrategy, MultiplicitiesMatchPaperPath) {
  // (x-1)^2 (x+2): squarefree reduction + multiplicity assignment.
  const Poly p = Poly{-1, 1} * Poly{-1, 1} * Poly{2, 1};
  RootFinderConfig paper_cfg;
  const auto paper = find_real_roots(p, paper_cfg);
  const auto radii = find_real_roots(p, radii_config());
  expect_same_report(paper, radii, "(x-1)^2(x+2)");
  EXPECT_TRUE(radii.squarefree_reduced);
}

TEST(IsolateStrategy, AcceptsInputsThePaperPathRejects) {
  RootFinderConfig strict;
  strict.allow_sturm_fallback = false;
  const Poly mign = mignotte(11, 4);
  EXPECT_THROW(find_real_roots(mign, strict), NonNormalSequence);

  auto cfg = radii_config();
  cfg.allow_sturm_fallback = false;
  cfg.validate = true;  // Sturm cross-check of every returned cell
  const auto report = find_real_roots(mign, cfg);
  EXPECT_EQ(static_cast<int>(report.roots.size()),
            SturmChain(mign).distinct_real_roots());
  EXPECT_FALSE(report.used_sturm_fallback);
}

TEST(IsolateStrategy, GeneralSquarefreeInputsCrossCheckedBySturm) {
  Prng rng(99);
  auto cfg = radii_config(64);
  cfg.validate = true;
  for (int degree : {4, 7, 12}) {
    const Poly p = random_squarefree_poly(degree, 10, rng);
    const auto report = find_real_roots(p, cfg);
    EXPECT_EQ(static_cast<int>(report.roots.size()),
              SturmChain(p).distinct_real_roots())
        << "degree " << degree;
  }
}

TEST(IsolateStrategy, ZeroAndLinearEdgeCases) {
  // Zero root reported exactly; linear inputs solved by ceiling division.
  const auto zero = find_real_roots(poly_from_integer_roots({0, 2}),
                                    radii_config(10));
  ASSERT_EQ(zero.roots.size(), 2u);
  EXPECT_EQ(zero.roots[0], BigInt(0));
  EXPECT_EQ(zero.roots[1], BigInt(2) << 10);

  RootFinderConfig paper_cfg;
  paper_cfg.mu_bits = 20;
  const Poly lin{-3, 2};  // root 3/2
  expect_same_report(find_real_roots(lin, paper_cfg),
                     find_real_roots(lin, radii_config(20)), "2x-3");
}

// --- the kRadii strategy, parallel ------------------------------------------

TEST(IsolateStrategy, ParallelBitIdenticalAcrossThreadCounts) {
  Prng rng(5);
  const auto input = paper_input(12, rng);
  const auto cfg = radii_config(53);
  const auto sequential = find_real_roots(input.poly, cfg);
  for (int threads : {1, 2, 8}) {
    ParallelConfig pc;
    pc.num_threads = threads;
    const auto run = find_real_roots_parallel(input.poly, cfg, pc);
    expect_same_report(sequential, run.report, "radii parallel");
  }
  RootFinderConfig paper_cfg;
  paper_cfg.mu_bits = 53;
  EXPECT_EQ(sequential.roots, find_real_roots(input.poly, paper_cfg).roots);
}

TEST(IsolateStrategy, ParallelHandlesComplexRootsAndTagsRefineTasks) {
  const Poly mign = mignotte(13, 3);
  const auto cfg = radii_config(64);
  const auto sequential = find_real_roots(mign, cfg);
  ParallelConfig pc;
  pc.num_threads = 4;
  const auto run = find_real_roots_parallel(mign, cfg, pc);
  EXPECT_EQ(run.report.roots, sequential.roots);
  // The trace records the staged kRefine tasks (one per non-exact cell).
  bool saw_refine = false;
  for (const auto& t : run.trace.tasks) {
    if (t.kind == TaskKind::kRefine) saw_refine = true;
  }
  EXPECT_TRUE(saw_refine);
}

}  // namespace
}  // namespace pr
