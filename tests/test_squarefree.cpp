#include "poly/squarefree.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "gen/classic_polys.hpp"
#include "support/error.hpp"
#include "support/prng.hpp"

namespace pr {
namespace {

TEST(Squarefree, SquarefreeInputIsItsOwnDecomposition) {
  const Poly p = poly_from_integer_roots({-2, 1, 5});
  const auto f = squarefree_decompose(p);
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].multiplicity, 1u);
  EXPECT_EQ(f[0].factor, p);
  EXPECT_EQ(squarefree_part(p), p);
}

TEST(Squarefree, SimpleSquare) {
  const Poly p = poly_from_integer_roots({1, 1});
  const auto f = squarefree_decompose(p);
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].multiplicity, 2u);
  EXPECT_EQ(f[0].factor, (Poly{-1, 1}));
  EXPECT_EQ(squarefree_part(p), (Poly{-1, 1}));
}

TEST(Squarefree, MixedMultiplicities) {
  // (x-1)^2 (x-2)^3 (x+4)
  const Poly p = poly_from_integer_roots({1, 1, 2, 2, 2, -4});
  const auto f = squarefree_decompose(p);
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f[0].multiplicity, 1u);
  EXPECT_EQ(f[0].factor, (Poly{4, 1}));
  EXPECT_EQ(f[1].multiplicity, 2u);
  EXPECT_EQ(f[1].factor, (Poly{-1, 1}));
  EXPECT_EQ(f[2].multiplicity, 3u);
  EXPECT_EQ(f[2].factor, (Poly{-2, 1}));
  EXPECT_EQ(squarefree_part(p), poly_from_integer_roots({1, 2, -4}));
}

TEST(Squarefree, HighMultiplicity) {
  const Poly p = poly_from_integer_roots({3, 3, 3, 3, 3});
  const auto f = squarefree_decompose(p);
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].multiplicity, 5u);
  EXPECT_EQ(f[0].factor, (Poly{-3, 1}));
}

TEST(Squarefree, ContentIsIgnored) {
  const Poly p = BigInt(12) * poly_from_integer_roots({1, 1});
  const auto f = squarefree_decompose(p);
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].factor, (Poly{-1, 1}));
  EXPECT_EQ(f[0].multiplicity, 2u);
}

TEST(Squarefree, ConstantsAndErrors) {
  EXPECT_TRUE(squarefree_decompose(Poly{5}).empty());
  EXPECT_THROW(squarefree_decompose(Poly{}), InvalidArgument);
  EXPECT_THROW(squarefree_part(Poly{}), InvalidArgument);
  EXPECT_EQ(squarefree_part(Poly{5}), (Poly{1}));
}

TEST(Squarefree, IrrationalSquareFactors) {
  // (x^2 - 2)^2 (x^2 - 3)
  const Poly p = Poly{-2, 0, 1} * Poly{-2, 0, 1} * Poly{-3, 0, 1};
  const auto f = squarefree_decompose(p);
  ASSERT_EQ(f.size(), 2u);
  EXPECT_EQ(f[0].multiplicity, 1u);
  EXPECT_EQ(f[0].factor, (Poly{-3, 0, 1}));
  EXPECT_EQ(f[1].multiplicity, 2u);
  EXPECT_EQ(f[1].factor, (Poly{-2, 0, 1}));
}

TEST(Squarefree, RandomizedReconstruction) {
  Prng rng(31);
  for (int iter = 0; iter < 40; ++iter) {
    // Build prod (x - a_i)^{m_i} with distinct a_i.
    std::vector<long long> as;
    while (as.size() < 3) {
      const long long a = rng.range(-10, 10);
      if (std::find(as.begin(), as.end(), a) == as.end()) as.push_back(a);
    }
    std::vector<unsigned> ms = {1 + static_cast<unsigned>(rng.below(3)),
                                1 + static_cast<unsigned>(rng.below(3)),
                                1 + static_cast<unsigned>(rng.below(3))};
    Poly p{1};
    for (std::size_t i = 0; i < as.size(); ++i) {
      for (unsigned m = 0; m < ms[i]; ++m) p *= Poly{-as[i], 1};
    }
    const auto f = squarefree_decompose(p);
    // Reassemble and compare with the primitive part.
    Poly back{1};
    unsigned total_deg = 0;
    for (const auto& fac : f) {
      for (unsigned m = 0; m < fac.multiplicity; ++m) back *= fac.factor;
      total_deg += fac.multiplicity *
                   static_cast<unsigned>(fac.factor.degree());
    }
    EXPECT_EQ(back.primitive_part(), p.primitive_part());
    EXPECT_EQ(total_deg, static_cast<unsigned>(p.degree()));
  }
}

}  // namespace
}  // namespace pr
