// Scaled (fixed-point) evaluation: the Section 4.3 machinery.
#include <gtest/gtest.h>

#include "instr/counters.hpp"
#include "poly/poly.hpp"
#include "support/prng.hpp"

namespace pr {
namespace {

TEST(ScaledEval, MatchesDefinitionExactly) {
  // p(x) = 3x^2 - x + 4 at x = a/2^w: eval_scaled must equal
  // 2^(2w) * p(a/2^w) = 3a^2 - a*2^w + 4*2^(2w).
  const Poly p{4, -1, 3};
  for (long long a : {-9LL, -1LL, 0LL, 1LL, 5LL, 1000LL}) {
    for (std::size_t w : {0u, 1u, 7u, 31u}) {
      const BigInt expected = BigInt(3) * BigInt(a) * BigInt(a) -
                              (BigInt(a) << w) + (BigInt(4) << (2 * w));
      EXPECT_EQ(p.eval_scaled(BigInt(a), w), expected)
          << "a=" << a << " w=" << w;
    }
  }
}

TEST(ScaledEval, ScaleZeroIsPlainEvaluation) {
  Prng rng(3);
  for (int iter = 0; iter < 50; ++iter) {
    std::vector<BigInt> c;
    const int deg = 1 + static_cast<int>(rng.below(6));
    for (int i = 0; i <= deg; ++i) c.emplace_back(rng.range(-99, 99));
    const Poly p(std::move(c));
    const BigInt x(rng.range(-50, 50));
    EXPECT_EQ(p.eval_scaled(x, 0), p.eval(x));
  }
}

TEST(ScaledEval, SignAtScaledDetectsExactRoots) {
  // 4x^2 - 1 has roots +-1/2.
  const Poly p{-1, 0, 4};
  EXPECT_EQ(p.sign_at_scaled(BigInt(1), 1), 0);
  EXPECT_EQ(p.sign_at_scaled(BigInt(-1), 1), 0);
  EXPECT_EQ(p.sign_at_scaled(BigInt(2), 2), 0);  // 2/4 = 1/2
  EXPECT_LT(p.sign_at_scaled(BigInt(0), 1), 0);
  EXPECT_GT(p.sign_at_scaled(BigInt(3), 1), 0);
}

TEST(ScaledEval, ConsistentAcrossScales) {
  // Evaluating at a/2^w and (2a)/2^(w+1) must give the same sign.
  Prng rng(8);
  const Poly p{-7, 3, 0, 2, 1};
  for (int iter = 0; iter < 200; ++iter) {
    const BigInt a(rng.range(-1000, 1000));
    const std::size_t w = rng.below(20);
    EXPECT_EQ(p.sign_at_scaled(a, w), p.sign_at_scaled(a + a, w + 1));
  }
}

TEST(ScaledEval, ScalingIdentity) {
  // eval_scaled(a, w) == 2^(d*w) p(a/2^w): check against rational
  // arithmetic emulated with exact integer cross-multiplication for a
  // degree-3 polynomial.
  const Poly p{5, 0, -2, 1};  // x^3 - 2x^2 + 5
  Prng rng(21);
  for (int iter = 0; iter < 100; ++iter) {
    const long long a = rng.range(-64, 64);
    const std::size_t w = 1 + rng.below(10);
    // 2^(3w) p(a/2^w) = a^3 - 2 a^2 2^w + 5 * 2^(3w)
    const BigInt expected = BigInt(a) * BigInt(a) * BigInt(a) -
                            ((BigInt(2) * BigInt(a) * BigInt(a)) << w) +
                            (BigInt(5) << (3 * w));
    EXPECT_EQ(p.eval_scaled(BigInt(a), w), expected);
  }
}

TEST(ScaledEval, ConstantAndZeroPolynomials) {
  EXPECT_EQ((Poly{7}).eval_scaled(BigInt(123), 5).to_int64(), 7);
  EXPECT_TRUE(Poly{}.eval_scaled(BigInt(123), 5).is_zero());
}

TEST(ScaledEval, HornerCountsDegreeMultiplications) {
  // The Section 4.3 analysis charges d multiplications per evaluation;
  // the implementation must match (shifts are free).
  const Poly p{1, 1, 1, 1, 1, 1};  // degree 5
  const auto before = instr::thread_counts().total();
  (void)p.eval_scaled(BigInt(3), 16);
  const auto delta = instr::thread_counts().total() - before;
  EXPECT_EQ(delta.mul_count, 5u);
}

}  // namespace
}  // namespace pr
