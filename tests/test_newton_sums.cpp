#include "poly/newton_sums.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/root_finder.hpp"
#include "gen/classic_polys.hpp"
#include "gen/matrix_polys.hpp"
#include "support/error.hpp"
#include "support/prng.hpp"

namespace pr {
namespace {

TEST(NewtonSums, KnownIntegerRoots) {
  // roots 1, 2, 3: s_1 = 6, s_2 = 14, s_3 = 36, s_4 = 98.
  const Poly p = poly_from_integer_roots({1, 2, 3});
  const auto s = power_sums(p, 4);
  ASSERT_EQ(s.size(), 4u);
  EXPECT_EQ(s[0], Rational(6));
  EXPECT_EQ(s[1], Rational(14));
  EXPECT_EQ(s[2], Rational(36));
  EXPECT_EQ(s[3], Rational(98));
}

TEST(NewtonSums, NonMonicAndNegativeRoots) {
  // p = (2x - 1)(x + 3): roots 1/2, -3.  s_1 = -5/2, s_2 = 37/4.
  const Poly p = Poly{-1, 2} * Poly{3, 1};
  const auto s = power_sums(p, 2);
  EXPECT_EQ(s[0], Rational(BigInt(-5), BigInt(2)));
  EXPECT_EQ(s[1], Rational(BigInt(37), BigInt(4)));
}

TEST(NewtonSums, RepeatedRootsCountWithMultiplicity) {
  // (x-2)^3: s_1 = 6, s_2 = 12.
  const Poly p = poly_from_integer_roots({2, 2, 2});
  const auto s = power_sums(p, 2);
  EXPECT_EQ(s[0], Rational(6));
  EXPECT_EQ(s[1], Rational(12));
}

TEST(NewtonSums, ElementarySymmetric) {
  const Poly p = poly_from_integer_roots({1, 2, 3});
  EXPECT_EQ(elementary_symmetric_from_coeffs(p, 0), Rational(1));
  EXPECT_EQ(elementary_symmetric_from_coeffs(p, 1), Rational(6));
  EXPECT_EQ(elementary_symmetric_from_coeffs(p, 2), Rational(11));
  EXPECT_EQ(elementary_symmetric_from_coeffs(p, 3), Rational(6));
  EXPECT_THROW(elementary_symmetric_from_coeffs(p, 4), InvalidArgument);
}

TEST(NewtonSums, MatchesCharPolyTraces) {
  // For a characteristic polynomial, s_k = tr(A^k) exactly.
  Prng rng(777000);
  const IntMatrix a = random_symmetric_matrix(7, -3, 3, rng);
  const Poly p = charpoly_berkowitz(a);
  const auto s = power_sums(p, 3);
  EXPECT_EQ(s[0], Rational(a.trace()));
  EXPECT_EQ(s[1], Rational((a * a).trace()));
  EXPECT_EQ(s[2], Rational((a * a * a).trace()));
}

TEST(NewtonSums, ValidatesRootFinderOutput) {
  // The independent validation channel: approximate power sums of the
  // returned roots must match the exact coefficient-derived values to
  // within the mu-approximation error.
  Prng rng(777001);
  const auto input = paper_input(15, rng);
  RootFinderConfig cfg;
  cfg.mu_bits = 80;
  const auto rep = find_real_roots(input.poly, cfg);
  const auto s = power_sums(input.poly, 2);
  double s1 = 0, s2 = 0, absmax = 0;
  for (std::size_t i = 0; i < rep.roots.size(); ++i) {
    const double v = rep.root_as_double(i);
    s1 += v * rep.multiplicities[i];
    s2 += v * v * rep.multiplicities[i];
    absmax = std::max(absmax, std::fabs(v));
  }
  const double n = static_cast<double>(input.poly.degree());
  const double eps1 = n * std::pow(2.0, -80.0) + 1e-9;
  const double eps2 = 2 * n * absmax * std::pow(2.0, -80.0) + 1e-9;
  EXPECT_NEAR(s1, s[0].to_double(), eps1 + 1e-7 * std::fabs(s1));
  EXPECT_NEAR(s2, s[1].to_double(), eps2 + 1e-7 * std::fabs(s2));
}

TEST(NewtonSums, RejectsBadArguments) {
  EXPECT_THROW(power_sums(Poly{3}, 2), InvalidArgument);
  EXPECT_THROW(power_sums(Poly{0, 1}, 0), InvalidArgument);
}

}  // namespace
}  // namespace pr
