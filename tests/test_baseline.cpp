#include "baseline/sturm_finder.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "baseline/interval_ablations.hpp"
#include "core/root_finder.hpp"
#include "gen/classic_polys.hpp"
#include "gen/matrix_polys.hpp"
#include "poly/squarefree.hpp"
#include "support/error.hpp"
#include "support/prng.hpp"

namespace pr {
namespace {

TEST(SturmFinder, IntegerRoots) {
  IntervalSolverConfig cfg;
  const auto roots = sturm_find_roots(
      poly_from_integer_roots({-7, -3, 0, 2, 11}), 16, cfg, nullptr);
  ASSERT_EQ(roots.size(), 5u);
  const long long expect[] = {-7, -3, 0, 2, 11};
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(roots[i], BigInt(expect[i]) << 16);
  }
}

TEST(SturmFinder, AgreesWithTreeAlgorithmExactly) {
  // The headline cross-check: two completely different isolation
  // strategies must produce bit-identical mu-approximations.
  Prng rng(31337);
  IntervalSolverConfig cfg;
  for (int trial = 0; trial < 5; ++trial) {
    const auto input = paper_input(7 + 2 * trial, rng);
    for (std::size_t mu : {6u, 30u}) {
      RootFinderConfig rcfg;
      rcfg.mu_bits = mu;
      const auto tree = find_real_roots(input.poly, rcfg);
      const auto base =
          sturm_find_roots(squarefree_part(input.poly), mu, cfg, nullptr);
      EXPECT_EQ(tree.roots, base) << "n=" << input.poly.degree()
                                  << " mu=" << mu;
    }
  }
}

TEST(SturmFinder, ClusteredRootsBelowOutputGrid) {
  // Roots 1/64 apart but mu = 2: isolation must descend below the output
  // grid and still produce correct (possibly equal) approximations.
  Prng rng(11);
  const Poly p = clustered_rational_roots(5, 64, 2, rng);
  IntervalSolverConfig cfg;
  const auto coarse = sturm_find_roots(p, 2, cfg, nullptr);
  const auto fine = sturm_find_roots(p, 40, cfg, nullptr);
  ASSERT_EQ(coarse.size(), 5u);
  ASSERT_EQ(fine.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(coarse[i], BigInt::cdiv(fine[i], BigInt::pow2(38)));
  }
}

TEST(SturmFinder, IrrationalRootsHighPrecision) {
  IntervalSolverConfig cfg;
  const auto roots = sturm_find_roots(Poly{-2, 0, 1}, 100, cfg, nullptr);
  ASSERT_EQ(roots.size(), 2u);
  const BigInt two_scaled = BigInt(2) << 200;
  EXPECT_LT((roots[1] - BigInt(1)) * (roots[1] - BigInt(1)), two_scaled);
  EXPECT_GE(roots[1] * roots[1], two_scaled);
}

TEST(SturmFinder, EvenPolynomialNoFallbackNeeded) {
  // The baseline has no normality requirement.
  const Poly p = Poly{-2, 0, 1} * Poly{-3, 0, 1};
  IntervalSolverConfig cfg;
  const auto roots = sturm_find_roots(p, 40, cfg, nullptr);
  EXPECT_EQ(roots.size(), 4u);
}

TEST(SturmFinder, RejectsConstants) {
  IntervalSolverConfig cfg;
  EXPECT_THROW(sturm_find_roots(Poly{3}, 8, cfg, nullptr), InvalidArgument);
}

TEST(Ablations, ModesAgreeAndRankByCost) {
  Prng rng(5150);
  const auto input = paper_input(12, rng);
  const auto runs = compare_solver_modes(input.poly, 80);
  ASSERT_EQ(runs.size(), 4u);
  EXPECT_EQ(runs[0].mode, IntervalSolverConfig::Mode::kHybrid);
  // Hybrid must beat pure bisection on interval-phase bit cost at this
  // precision (the point of the paper's hybrid design).
  EXPECT_LT(runs[0].interval_bitcost, runs[3].interval_bitcost);
  EXPECT_LT(runs[2].interval_bitcost, runs[3].interval_bitcost)
      << "regula falsi must also beat pure bisection";
  EXPECT_STREQ(solver_mode_name(runs[0].mode), "hybrid");
  EXPECT_STREQ(solver_mode_name(runs[2].mode), "regula-falsi");
  EXPECT_STREQ(solver_mode_name(runs[3].mode), "pure-bisection");
}

}  // namespace
}  // namespace pr
