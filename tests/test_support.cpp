#include <gtest/gtest.h>

#include <set>

#include "support/error.hpp"
#include "support/prng.hpp"
#include "support/stopwatch.hpp"
#include "support/text.hpp"

namespace pr {
namespace {

TEST(Prng, DeterministicAcrossInstances) {
  Prng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Prng, DifferentSeedsDiffer) {
  Prng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next() == b.next();
  EXPECT_LT(same, 4);
}

TEST(Prng, BelowIsInRangeAndCoversValues) {
  Prng rng(42);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t v = rng.below(7);
    ASSERT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_THROW(rng.below(0), InvalidArgument);
}

TEST(Prng, RangeIsInclusive) {
  Prng rng(9);
  bool hit_lo = false, hit_hi = false;
  for (int i = 0; i < 3000; ++i) {
    const std::int64_t v = rng.range(-2, 2);
    ASSERT_GE(v, -2);
    ASSERT_LE(v, 2);
    hit_lo |= v == -2;
    hit_hi |= v == 2;
  }
  EXPECT_TRUE(hit_lo);
  EXPECT_TRUE(hit_hi);
  EXPECT_THROW(rng.range(3, 2), InvalidArgument);
}

TEST(Text, Fixed) {
  EXPECT_EQ(fixed(3.14159, 2), "3.14");
  EXPECT_EQ(fixed(-0.5, 1), "-0.5");
  EXPECT_EQ(fixed(2.0, 0), "2");
}

TEST(Text, Pad) {
  EXPECT_EQ(pad("ab", 5), "   ab");
  EXPECT_EQ(pad("ab", -5), "ab   ");
  EXPECT_EQ(pad("abcdef", 3), "abcdef");
}

TEST(Text, WithCommas) {
  EXPECT_EQ(with_commas(0), "0");
  EXPECT_EQ(with_commas(999), "999");
  EXPECT_EQ(with_commas(1000), "1,000");
  EXPECT_EQ(with_commas(1234567890), "1,234,567,890");
}

TEST(Text, TableRowsAlign) {
  TextTable t({-4, 6});
  EXPECT_EQ(t.row({"ab", "cd"}), "ab        cd");
  EXPECT_EQ(t.rule().size(), 12u);
  EXPECT_EQ(t.row({"ab"}), "ab          ");
}

TEST(Text, LsSlope) {
  // y = 3x + 1 exactly.
  EXPECT_NEAR(ls_slope({1, 2, 3, 4}, {4, 7, 10, 13}), 3.0, 1e-12);
  EXPECT_THROW(ls_slope({1}, {2}), InvalidArgument);
  EXPECT_THROW(ls_slope({1, 1}, {2, 3}), InvalidArgument);
}

TEST(Stopwatch, MeasuresNonNegativeMonotoneTime) {
  Stopwatch sw;
  const double t1 = sw.seconds();
  const double t2 = sw.seconds();
  EXPECT_GE(t1, 0.0);
  EXPECT_GE(t2, t1);
  sw.restart();
  EXPECT_GE(sw.millis(), 0.0);
}

TEST(Text, ParseLongStrictAcceptsWholeIntegers) {
  long v = -1;
  EXPECT_TRUE(parse_long_strict("0", -10, 10, v));
  EXPECT_EQ(v, 0);
  EXPECT_TRUE(parse_long_strict("42", 0, 100, v));
  EXPECT_EQ(v, 42);
  EXPECT_TRUE(parse_long_strict("-7", -10, 10, v));
  EXPECT_EQ(v, -7);
  EXPECT_TRUE(parse_long_strict("+8", 0, 10, v));
  EXPECT_EQ(v, 8);
}

TEST(Text, ParseLongStrictRejectsGarbage) {
  long v = 1234;
  // The atoi failure modes this helper exists to close off:
  EXPECT_FALSE(parse_long_strict("x", 0, 10, v));        // atoi -> 0
  EXPECT_FALSE(parse_long_strict("12abc", 0, 100, v));   // atoi -> 12
  EXPECT_FALSE(parse_long_strict("", 0, 10, v));
  EXPECT_FALSE(parse_long_strict(nullptr, 0, 10, v));
  EXPECT_FALSE(parse_long_strict(" 3", 0, 10, v));       // strtol skips ws
  EXPECT_FALSE(parse_long_strict("3 ", 0, 10, v));
  EXPECT_FALSE(parse_long_strict("1e3", 0, 10000, v));
  EXPECT_FALSE(parse_long_strict("0x10", 0, 100, v));
  EXPECT_EQ(v, 1234);  // out is untouched on failure
}

TEST(Text, ParseLongStrictEnforcesRange) {
  long v = 0;
  EXPECT_FALSE(parse_long_strict("11", 0, 10, v));
  EXPECT_FALSE(parse_long_strict("-1", 0, 10, v));
  EXPECT_TRUE(parse_long_strict("10", 0, 10, v));
  // Values past LONG_MAX are overflow, not clamped.
  EXPECT_FALSE(parse_long_strict("99999999999999999999999999", 0,
                                 1000000, v));
}

TEST(Errors, CheckHelpers) {
  EXPECT_NO_THROW(check_internal(true, "ok"));
  EXPECT_THROW(check_internal(false, "bad"), InternalError);
  EXPECT_NO_THROW(check_arg(true, "ok"));
  EXPECT_THROW(check_arg(false, "bad"), InvalidArgument);
}

}  // namespace
}  // namespace pr
