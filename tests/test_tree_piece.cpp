// TreePiece decomposition (core/tree_piece.hpp): partition invariants,
// mailbox boundary handoff, the by-pieces sequential reference, and the
// ISSUE's piece determinism matrix on the parallel driver.
#include "core/tree_piece.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <sstream>
#include <thread>

#include "core/parallel_driver.hpp"
#include "core/tree_builder.hpp"
#include "gen/classic_polys.hpp"
#include "gen/matrix_polys.hpp"
#include "poly/bounds.hpp"
#include "poly/remainder_sequence.hpp"
#include "support/error.hpp"
#include "support/prng.hpp"

namespace pr {
namespace {

// --- TreePartition ----------------------------------------------------------

TEST(TreePartition, PiecesAndCanopyDisjointlyCoverEveryNode) {
  for (int n : {1, 2, 5, 8, 13, 21, 32}) {
    Tree tree(n);
    for (int pieces : {1, 2, 4, 8}) {
      TreePartition part(tree, pieces);
      ASSERT_GE(part.num_pieces(), 1);
      ASSERT_LE(part.num_pieces(), pieces);
      std::set<int> seen;
      for (int p = 0; p < part.num_pieces(); ++p) {
        for (int idx : part.piece_nodes(p)) {
          EXPECT_EQ(part.piece_of(idx), p);
          EXPECT_TRUE(seen.insert(idx).second)
              << "node " << idx << " owned twice";
        }
      }
      for (int idx : part.canopy_nodes()) {
        EXPECT_EQ(part.piece_of(idx), -1);
        EXPECT_TRUE(seen.insert(idx).second);
      }
      EXPECT_EQ(seen.size(), tree.nodes().size())
          << "n=" << n << " pieces=" << pieces;
    }
  }
}

TEST(TreePartition, PieceRootsSitExactlyAtTheSplitLevel) {
  Tree tree(21);
  for (int pieces : {2, 4, 8}) {
    TreePartition part(tree, pieces);
    std::size_t at_level = 0;
    for (std::size_t idx = 0; idx < tree.nodes().size(); ++idx) {
      const bool at = tree.nodes()[idx].level == part.split_level();
      at_level += at;
      EXPECT_EQ(part.is_piece_root(static_cast<int>(idx)), at);
    }
    EXPECT_EQ(part.piece_roots().size(), at_level);
    // Auto split: shallowest level with >= pieces nodes.
    EXPECT_GE(static_cast<int>(at_level), pieces);
    std::size_t above = 0;
    for (const auto& nd : tree.nodes()) {
      above += nd.level == part.split_level() - 1;
    }
    EXPECT_LT(static_cast<int>(above), pieces)
        << "split level not the shallowest eligible one";
  }
}

TEST(TreePartition, DescendantsInheritTheirPieceRoot) {
  Tree tree(17);
  TreePartition part(tree, 4);
  for (std::size_t idx = 0; idx < tree.nodes().size(); ++idx) {
    const auto& nd = tree.nodes()[idx];
    if (nd.level <= part.split_level()) continue;
    // Walk up to the split level: the ancestor's piece must match.
    int anc = static_cast<int>(idx);
    while (tree.node(anc).level > part.split_level()) {
      anc = tree.node(anc).parent;
    }
    EXPECT_TRUE(part.is_piece_root(anc));
    EXPECT_EQ(part.piece_of(static_cast<int>(idx)), part.piece_of(anc));
  }
}

TEST(TreePartition, PieceNodesArePostordered) {
  Tree tree(25);
  TreePartition part(tree, 4);
  for (int p = 0; p < part.num_pieces(); ++p) {
    std::set<int> done;
    for (int idx : part.piece_nodes(p)) {
      const auto& nd = tree.node(idx);
      if (nd.left >= 0 && part.piece_of(nd.left) == p) {
        EXPECT_TRUE(done.count(nd.left)) << "child after parent";
      }
      if (nd.right >= 0 && part.piece_of(nd.right) == p) {
        EXPECT_TRUE(done.count(nd.right));
      }
      done.insert(idx);
    }
  }
}

TEST(TreePartition, SameInputsSameAssignment) {
  Tree tree(19);
  TreePartition a(tree, 3), b(tree, 3);
  EXPECT_EQ(a.num_pieces(), b.num_pieces());
  EXPECT_EQ(a.split_level(), b.split_level());
  for (std::size_t idx = 0; idx < tree.nodes().size(); ++idx) {
    EXPECT_EQ(a.piece_of(static_cast<int>(idx)),
              b.piece_of(static_cast<int>(idx)));
  }
}

TEST(TreePartition, ExplicitSplitLevelIsHonoredAndValidated) {
  Tree tree(16);  // depth >= 4
  for (int level = 0; level < tree.depth(); ++level) {
    TreePartition part(tree, 4, level);
    EXPECT_EQ(part.split_level(), level);
  }
  EXPECT_THROW(TreePartition(tree, 2, tree.depth()), InvalidArgument);
  EXPECT_THROW(TreePartition(tree, 0), InvalidArgument);
}

TEST(TreePartition, SplitAtRootMakesOneEffectivePiece) {
  Tree tree(10);
  TreePartition part(tree, 8, 0);
  EXPECT_EQ(part.num_pieces(), 1);
  EXPECT_TRUE(part.is_piece_root(tree.root_index()));
  EXPECT_TRUE(part.canopy_nodes().empty());
}

// --- PieceMailbox -----------------------------------------------------------

TEST(PieceMailbox, PostThenTakeRoundTripsThePayload) {
  PieceMailbox box;
  BoundaryMessage msg;
  msg.phase = BoundaryMessage::Phase::kRoots;
  msg.node = 7;
  msg.from_piece = 2;
  msg.roots = {BigInt(3), BigInt(9)};
  box.post(std::move(msg));
  EXPECT_EQ(box.pending(), 1u);
  const auto got = box.take(7, BoundaryMessage::Phase::kRoots);
  EXPECT_EQ(got.from_piece, 2);
  EXPECT_EQ(got.roots, (std::vector<BigInt>{BigInt(3), BigInt(9)}));
  EXPECT_EQ(box.pending(), 0u);
}

TEST(PieceMailbox, TakeIsKeyedByNodeAndPhase) {
  PieceMailbox box;
  for (int node : {4, 5}) {
    for (auto phase :
         {BoundaryMessage::Phase::kPoly, BoundaryMessage::Phase::kRoots}) {
      BoundaryMessage m;
      m.phase = phase;
      m.node = node;
      m.from_piece = node * 10 + (phase == BoundaryMessage::Phase::kPoly);
      box.post(std::move(m));
    }
  }
  EXPECT_EQ(box.pending(), 4u);
  EXPECT_EQ(box.take(5, BoundaryMessage::Phase::kPoly).from_piece, 51);
  EXPECT_EQ(box.take(4, BoundaryMessage::Phase::kRoots).from_piece, 40);
  EXPECT_EQ(box.pending(), 2u);
}

TEST(PieceMailbox, TakingAMissingMessageThrows) {
  PieceMailbox box;
  EXPECT_THROW(box.take(3, BoundaryMessage::Phase::kPoly), InternalError);
  BoundaryMessage m;
  m.phase = BoundaryMessage::Phase::kPoly;
  m.node = 3;
  box.post(std::move(m));
  EXPECT_THROW(box.take(3, BoundaryMessage::Phase::kRoots), InternalError);
}

TEST(PieceMailbox, MissingMessageDiagnosticNamesPieceNodeAndPending) {
  // A never-posted take is a scheduling bug; its diagnostic must say
  // which piece's inbox, which node/phase was requested, and what IS
  // pending, or the failure is undebuggable from the message alone.
  PieceMailbox box;
  box.set_piece(5);
  BoundaryMessage m;
  m.phase = BoundaryMessage::Phase::kRoots;
  m.node = 12;
  m.from_piece = 2;
  box.post(std::move(m));
  try {
    box.take(7, BoundaryMessage::Phase::kPoly);
    FAIL() << "expected InternalError";
  } catch (const InternalError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("piece 5"), std::string::npos) << msg;
    EXPECT_NE(msg.find("node 7"), std::string::npos) << msg;
    EXPECT_NE(msg.find("kPoly"), std::string::npos) << msg;
    // The pending listing names the message that IS there.
    EXPECT_NE(msg.find("node 12"), std::string::npos) << msg;
    EXPECT_NE(msg.find("kRoots"), std::string::npos) << msg;
  }
}

TEST(TreeCanopy, AssertDrainedThrowsOnUndrainedInbox) {
  TreeCanopy canopy(3);
  EXPECT_EQ(canopy.pending(), 0u);
  EXPECT_NO_THROW(canopy.assert_drained());
  BoundaryMessage m;
  m.phase = BoundaryMessage::Phase::kPoly;
  m.node = 4;
  m.from_piece = 1;
  canopy.inbox(1).post(std::move(m));
  EXPECT_EQ(canopy.pending(), 1u);
  try {
    canopy.assert_drained();
    FAIL() << "expected InternalError";
  } catch (const InternalError& e) {
    EXPECT_NE(std::string(e.what()).find("piece 1"), std::string::npos)
        << e.what();
  }
  canopy.inbox(1).take(4, BoundaryMessage::Phase::kPoly);
  EXPECT_NO_THROW(canopy.assert_drained());
}

TEST(PieceMailbox, BoundarySendMovesStateOutOfTheNode) {
  // After send_poly_boundary the node holds nothing (the canopy cannot
  // read half-built state); recv restores it bit-for-bit.
  const Poly p = poly_from_integer_roots({-3, 1, 4, 8});
  const auto rs = compute_remainder_sequence(p);
  Tree tree(p.degree());
  for (int idx : tree.postorder()) compute_node_poly(tree, idx, rs);
  const int root = tree.root_index();
  const int left = tree.node(root).left;
  ASSERT_TRUE(tree.node(left).has_t);
  const PolyMat22 expect_t = tree.node(left).t;
  PieceMailbox box;
  send_poly_boundary(tree, left, 0, box);
  EXPECT_FALSE(tree.node(left).has_t);
  recv_poly_boundary(tree, left, box);
  EXPECT_TRUE(tree.node(left).has_t);
  EXPECT_EQ(tree.node(left).t, expect_t);
}

// --- run_tree_by_pieces -----------------------------------------------------

void expect_trees_equal(const Tree& a, const Tree& b, const char* what) {
  ASSERT_EQ(a.nodes().size(), b.nodes().size());
  for (std::size_t i = 0; i < a.nodes().size(); ++i) {
    EXPECT_EQ(a.nodes()[i].poly, b.nodes()[i].poly) << what << " node " << i;
    EXPECT_EQ(a.nodes()[i].roots, b.nodes()[i].roots) << what << " node " << i;
  }
}

TEST(TreePieceRun, ByPiecesMatchesSequentialForEveryPartition) {
  Prng rng(1215);
  const auto input = paper_input(13, rng);
  const std::size_t mu = 24;
  const auto rs = compute_remainder_sequence(input.poly);
  const BigInt bound = BigInt::pow2(root_bound_pow2(input.poly) + mu);
  IntervalSolverConfig scfg;
  Tree ref(input.poly.degree());
  run_tree_sequential(ref, rs, mu, bound, scfg, nullptr);
  Tree probe(input.poly.degree());
  for (int pieces : {1, 2, 4, 8}) {
    for (int level = 0; level < probe.depth(); ++level) {
      Tree tree(input.poly.degree());
      TreePartition part(tree, pieces, level);
      TreeCanopy canopy(part.num_pieces());
      run_tree_by_pieces(tree, part, canopy, rs, mu, bound, scfg, nullptr);
      expect_trees_equal(tree, ref,
                         (std::to_string(pieces) + " pieces, split level " +
                          std::to_string(level))
                             .c_str());
      for (int p = 0; p < part.num_pieces(); ++p) {
        EXPECT_EQ(canopy.inbox(p).pending(), 0u) << "unconsumed boundary msg";
      }
    }
  }
}

TEST(TreePieceRun, WilkinsonAcrossPieceCounts) {
  const Poly p = wilkinson(12);
  const std::size_t mu = 16;
  const auto rs = compute_remainder_sequence(p);
  const BigInt bound = BigInt::pow2(root_bound_pow2(p) + mu);
  IntervalSolverConfig scfg;
  Tree ref(p.degree());
  run_tree_sequential(ref, rs, mu, bound, scfg, nullptr);
  for (int pieces : {2, 5, 8}) {
    Tree tree(p.degree());
    TreePartition part(tree, pieces);
    TreeCanopy canopy(part.num_pieces());
    run_tree_by_pieces(tree, part, canopy, rs, mu, bound, scfg, nullptr);
    expect_trees_equal(tree, ref, "wilkinson");
  }
}

// --- parallel driver with pieces -------------------------------------------

RootFinderConfig base_config(std::size_t mu) {
  RootFinderConfig cfg;
  cfg.mu_bits = mu;
  return cfg;
}

// The ISSUE's acceptance gate: bit-identical RootReports across
// {1,2,4,8} pieces x {1,2,8} threads x {central,stealing} on the
// Wilkinson and Berkowitz workloads.
TEST(TreePieceMatrix, DeterministicAcrossPiecesThreadsAndPolicies) {
  struct Workload {
    const char* name;
    Poly poly;
  };
  Prng rng(99);
  const std::vector<Workload> workloads = {
      {"wilkinson", wilkinson(12)},
      {"berkowitz", paper_input(10, rng).poly},
  };
  const RootFinderConfig cfg = base_config(24);
  for (const auto& w : workloads) {
    const auto ref = find_real_roots(w.poly, cfg);
    for (int pieces : {1, 2, 4, 8}) {
      for (PoolPolicy policy :
           {PoolPolicy::kCentralQueue, PoolPolicy::kWorkStealing}) {
        for (int threads : {1, 2, 8}) {
          ParallelConfig pc;
          pc.pool_policy = policy;
          pc.num_threads = threads;
          pc.pieces.num_pieces = pieces;
          const auto run = find_real_roots_parallel(w.poly, cfg, pc);
          EXPECT_FALSE(run.used_sequential_fallback);
          EXPECT_EQ(run.report.roots, ref.roots)
              << w.name << " pieces=" << pieces << " policy="
              << (policy == PoolPolicy::kCentralQueue ? "central" : "steal")
              << " threads=" << threads;
          EXPECT_EQ(run.report.multiplicities, ref.multiplicities) << w.name;
          EXPECT_GE(run.num_pieces, 1);
          EXPECT_LE(run.num_pieces, pieces);
        }
      }
    }
  }
}

// Force the boundary at every tree level: shallow splits make huge pieces
// with a thin canopy, deep splits push the boundary down to the leaves.
TEST(TreePieceMatrix, SplitLevelSweepKeepsRootsIdentical) {
  Prng rng(77);
  const auto input = paper_input(12, rng);
  const RootFinderConfig cfg = base_config(20);
  const auto ref = find_real_roots(input.poly, cfg);
  const int depth = Tree(input.poly.degree()).depth();
  for (int level = 0; level < depth; ++level) {
    for (PoolPolicy policy :
         {PoolPolicy::kCentralQueue, PoolPolicy::kWorkStealing}) {
      ParallelConfig pc;
      pc.pool_policy = policy;
      pc.num_threads = 4;
      pc.pieces.num_pieces = 4;
      pc.pieces.split_level = level;
      const auto run = find_real_roots_parallel(input.poly, cfg, pc);
      EXPECT_FALSE(run.used_sequential_fallback);
      EXPECT_EQ(run.split_level, level);
      EXPECT_EQ(run.report.roots, ref.roots)
          << "split level " << level << " policy "
          << (policy == PoolPolicy::kCentralQueue ? "central" : "steal");
    }
  }
}

TEST(TreePieceMatrix, ModularPathMatchesWithPieces) {
  Prng rng(31);
  const auto input = paper_input(12, rng);
  RootFinderConfig cfg = base_config(40);
  cfg.modular.enabled = true;
  cfg.modular.min_degree = 2;
  cfg.modular.min_combine_bits = 1;
  cfg.modular.combine_cost_gate = false;
  const auto ref = find_real_roots(input.poly, base_config(40));
  for (int pieces : {1, 4}) {
    ParallelConfig pc;
    pc.num_threads = 4;
    pc.pool_policy = PoolPolicy::kWorkStealing;
    pc.pieces.num_pieces = pieces;
    const auto run = find_real_roots_parallel(input.poly, cfg, pc);
    EXPECT_FALSE(run.used_sequential_fallback);
    EXPECT_EQ(run.report.roots, ref.roots) << "pieces=" << pieces;
  }
}

TEST(TreePieceMatrix, CrtWaveFanoutKnobKeepsRootsIdentical) {
  Prng rng(55);
  const auto input = paper_input(10, rng);
  RootFinderConfig cfg = base_config(30);
  cfg.modular.enabled = true;
  cfg.modular.min_degree = 2;
  const auto ref = find_real_roots(input.poly, base_config(30));
  for (std::size_t fanout : {std::size_t{0}, std::size_t{1}, std::size_t{3},
                             std::size_t{64}}) {
    RootFinderConfig c = cfg;
    c.modular.crt_wave_fanout = fanout;
    ParallelConfig pc;
    pc.num_threads = 4;
    const auto run = find_real_roots_parallel(input.poly, c, pc);
    EXPECT_EQ(run.report.roots, ref.roots) << "fanout=" << fanout;
  }
}

TEST(TreePieceMatrix, AutoPiecesFollowThreadsAndFallbackStillWorks) {
  Prng rng(9);
  const auto input = paper_input(10, rng);
  const RootFinderConfig cfg = base_config(24);
  ParallelConfig pc;
  pc.num_threads = 4;
  pc.pieces.num_pieces = 0;  // auto: one per thread (capped by the tree)
  const auto run = find_real_roots_parallel(input.poly, cfg, pc);
  EXPECT_FALSE(run.used_sequential_fallback);
  EXPECT_GE(run.num_pieces, 1);
  EXPECT_LE(run.num_pieces, 4);
  // Repeated roots still take the sequential fallback with pieces set.
  const Poly rep = poly_from_integer_roots({2, 2, 5});
  const auto fb = find_real_roots_parallel(rep, base_config(12), pc);
  EXPECT_TRUE(fb.used_sequential_fallback);
  ASSERT_EQ(fb.report.roots.size(), 2u);
}

TEST(TreePieceMatrix, RejectsNegativePieceCount) {
  ParallelConfig pc;
  pc.pieces.num_pieces = -2;
  EXPECT_THROW(find_real_roots_parallel(wilkinson(6), base_config(12), pc),
               InvalidArgument);
}

TEST(TreePieceMatrix, OversizedSplitLevelIsClampedNotFatal) {
  ParallelConfig pc;
  pc.num_threads = 2;
  pc.pieces.num_pieces = 2;
  pc.pieces.split_level = 99;
  const auto run =
      find_real_roots_parallel(wilkinson(8), base_config(12), pc);
  EXPECT_FALSE(run.used_sequential_fallback);
  EXPECT_LT(run.split_level, Tree(8).depth());
  ASSERT_EQ(run.report.roots.size(), 8u);
}

// --- per-piece scheduler stats ---------------------------------------------

TEST(TreePieceStats, PieceCountersAccountForEveryTaggedTask) {
  Prng rng(7);
  const auto input = paper_input(12, rng);
  const RootFinderConfig cfg = base_config(30);
  for (PoolPolicy policy :
       {PoolPolicy::kCentralQueue, PoolPolicy::kWorkStealing}) {
    ParallelConfig pc;
    pc.pool_policy = policy;
    pc.num_threads = 4;
    pc.pieces.num_pieces = 4;
    const auto run = find_real_roots_parallel(input.poly, cfg, pc);
    ASSERT_FALSE(run.used_sequential_fallback);
    ASSERT_EQ(static_cast<int>(run.pool.pieces.size()), run.num_pieces);
    std::size_t tagged = 0;
    for (const auto& e : run.pool.timeline.entries) {
      if (e.piece >= 0) {
        ASSERT_LT(e.piece, run.num_pieces);
        ++tagged;
      }
    }
    EXPECT_GT(tagged, 0u) << "a multi-piece run must tag tasks";
    std::size_t counted = 0, stolen = 0;
    double exec = 0;
    for (const auto& p : run.pool.pieces) {
      counted += p.tasks;
      stolen += p.stolen;
      exec += p.exec_seconds;
    }
    EXPECT_EQ(counted, tagged);
    EXPECT_GT(exec, 0.0);
    if (policy == PoolPolicy::kCentralQueue) {
      EXPECT_EQ(run.pool.cross_piece_steals, 0u);
      EXPECT_EQ(stolen, 0u);
    } else {
      // Stealing a tagged task IS a cross-piece steal (tagged tasks are
      // always pushed to their home worker's deque).
      EXPECT_EQ(run.pool.cross_piece_steals, stolen);
      EXPECT_LE(run.pool.cross_piece_steals, run.pool.steals);
    }
  }
}

TEST(TreePieceStats, SinglePieceRunStaysUntagged) {
  // With one piece the graph must be byte-identical to the pre-piece
  // driver: no tags (which would pin work to one worker under stealing),
  // no per-piece rows.
  Prng rng(7);
  const auto input = paper_input(10, rng);
  ParallelConfig pc;
  pc.num_threads = 4;
  pc.pool_policy = PoolPolicy::kWorkStealing;
  pc.pieces.num_pieces = 1;
  const auto run = find_real_roots_parallel(input.poly, base_config(24), pc);
  ASSERT_FALSE(run.used_sequential_fallback);
  EXPECT_EQ(run.num_pieces, 1);
  EXPECT_TRUE(run.pool.pieces.empty());
  EXPECT_EQ(run.pool.cross_piece_steals, 0u);
  for (const auto& e : run.pool.timeline.entries) EXPECT_EQ(e.piece, -1);
}

TEST(TreePieceStats, TimelineRoundTripsPieceIdsAndReadsLegacyLines) {
  ExecutionTimeline tl;
  tl.workers = 2;
  tl.entries = {{0, 0, 0.0, 0.5, -1}, {1, 1, 0.1, 0.4, 3}};
  std::ostringstream os;
  tl.save(os);
  std::istringstream is(os.str());
  const auto back = ExecutionTimeline::load(is);
  ASSERT_EQ(back.entries.size(), 2u);
  EXPECT_EQ(back.entries[0].piece, -1);
  EXPECT_EQ(back.entries[1].piece, 3);
  // Pre-piece traces have no fifth field: default to -1.
  std::istringstream legacy("2 2\n0 0 0.0 0.5\n1 1 0.1 0.4\n");
  const auto old = ExecutionTimeline::load(legacy);
  ASSERT_EQ(old.entries.size(), 2u);
  EXPECT_EQ(old.entries[0].piece, -1);
  EXPECT_EQ(old.entries[1].piece, -1);
}

// --- shutdown race with piece-tagged graphs ---------------------------------

class PiecePoolPolicies : public ::testing::TestWithParam<PoolPolicy> {};

// Mirror of the PR 2 shutdown regression (ThrowingTaskRacingLongTasks...)
// with piece-tagged tasks: racing piece completion against a throwing
// task must drain cleanly even though tagged tasks sit on specific home
// deques when the bomb goes off.
TEST_P(PiecePoolPolicies, ThrowingTaskRacesPieceCompletionCleanly) {
  for (int round = 0; round < 8; ++round) {
    TaskGraph g;
    // Slow tagged tasks spread across four pieces, likely mid-flight when
    // the bomb goes off.
    for (int i = 0; i < 6; ++i) {
      g.add(
          TaskKind::kGeneric, i,
          [] { (void)(BigInt::pow2(20000) * BigInt::pow2(20000)); }, i % 4);
    }
    g.add(TaskKind::kGeneric, 99, [] {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
      throw InvalidArgument("boom");
    });
    // Tagged work queued behind the slow tasks, including boundary-style
    // send/recv pairs, so shutdown must abandon non-empty home deques.
    std::atomic<int> late{0};
    for (int i = 0; i < 32; ++i) {
      const TaskId a = g.add(
          i % 2 ? TaskKind::kPieceSend : TaskKind::kPieceRecv, i,
          [&late] { ++late; }, i % 4);
      g.add_edge(static_cast<TaskId>(i % 6), a);
    }
    TaskPool pool(4, GetParam());
    EXPECT_THROW(pool.run(g), InvalidArgument) << "round " << round;
  }
}

TEST_P(PiecePoolPolicies, TaggedGraphRunsAllTasksAndCountsThem) {
  TaskGraph g;
  std::atomic<int> ran{0};
  for (int i = 0; i < 64; ++i) {
    g.add(TaskKind::kGeneric, i, [&ran] { ++ran; }, i % 3);
  }
  EXPECT_EQ(g.max_piece(), 2);
  TaskPool pool(3, GetParam());
  const auto stats = pool.run(g);
  EXPECT_EQ(ran.load(), 64);
  ASSERT_EQ(stats.pieces.size(), 3u);
  std::size_t total = 0;
  for (const auto& p : stats.pieces) total += p.tasks;
  EXPECT_EQ(total, 64u);
}

INSTANTIATE_TEST_SUITE_P(BothPolicies, PiecePoolPolicies,
                         ::testing::Values(PoolPolicy::kCentralQueue,
                                           PoolPolicy::kWorkStealing),
                         [](const auto& param_info) {
                           return param_info.param == PoolPolicy::kCentralQueue
                                      ? std::string("Central")
                                      : std::string("Stealing");
                         });

}  // namespace
}  // namespace pr
