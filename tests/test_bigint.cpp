#include "bigint/bigint.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <utility>

#include "support/error.hpp"
#include "support/prng.hpp"

namespace pr {
namespace {

TEST(BigInt, ZeroProperties) {
  BigInt z;
  EXPECT_TRUE(z.is_zero());
  EXPECT_FALSE(z.negative());
  EXPECT_EQ(z.signum(), 0);
  EXPECT_EQ(z.bit_length(), 0u);
  EXPECT_EQ(z.to_decimal(), "0");
  EXPECT_EQ(z.to_int64(), 0);
  EXPECT_TRUE(z.is_even());
  EXPECT_EQ((-z).signum(), 0) << "-0 must normalize to +0";
}

TEST(BigInt, SmallConstruction) {
  EXPECT_EQ(BigInt(42).to_decimal(), "42");
  EXPECT_EQ(BigInt(-42).to_decimal(), "-42");
  EXPECT_EQ(BigInt(42).signum(), 1);
  EXPECT_EQ(BigInt(-42).signum(), -1);
  EXPECT_EQ(BigInt(1).bit_length(), 1u);
  EXPECT_EQ(BigInt(255).bit_length(), 8u);
  EXPECT_EQ(BigInt(256).bit_length(), 9u);
}

TEST(BigInt, Int64Extremes) {
  const long long min64 = std::numeric_limits<long long>::min();
  const long long max64 = std::numeric_limits<long long>::max();
  EXPECT_EQ(BigInt(min64).to_int64(), min64);
  EXPECT_EQ(BigInt(max64).to_int64(), max64);
  EXPECT_EQ(BigInt(min64).to_decimal(), std::to_string(min64));
  BigInt beyond = BigInt(max64) + BigInt(1);
  EXPECT_FALSE(beyond.fits_int64());
  EXPECT_THROW(beyond.to_int64(), InvalidArgument);
  // -2^63 fits, -2^63 - 1 does not.
  BigInt negedge = BigInt(min64);
  EXPECT_TRUE(negedge.fits_int64());
  EXPECT_FALSE((negedge - BigInt(1)).fits_int64());
}

TEST(BigInt, DecimalRoundTrip) {
  const char* cases[] = {
      "0",
      "1",
      "-1",
      "999999999999999999",
      "1000000000000000000000000000000000000001",
      "-123456789012345678901234567890123456789012345678901234567890",
  };
  for (const char* s : cases) {
    EXPECT_EQ(BigInt::from_decimal(s).to_decimal(), s) << s;
  }
}

TEST(BigInt, FromDecimalRejectsGarbage) {
  EXPECT_THROW(BigInt::from_decimal(""), InvalidArgument);
  EXPECT_THROW(BigInt::from_decimal("-"), InvalidArgument);
  EXPECT_THROW(BigInt::from_decimal("12a3"), InvalidArgument);
  EXPECT_THROW(BigInt::from_decimal(" 1"), InvalidArgument);
}

TEST(BigInt, FromDecimalAcceptsSignsAndZeros) {
  EXPECT_EQ(BigInt::from_decimal("+17").to_int64(), 17);
  EXPECT_EQ(BigInt::from_decimal("-0").signum(), 0);
  EXPECT_EQ(BigInt::from_decimal("007").to_int64(), 7);
}

TEST(BigInt, Pow2) {
  EXPECT_EQ(BigInt::pow2(0).to_int64(), 1);
  EXPECT_EQ(BigInt::pow2(10).to_int64(), 1024);
  EXPECT_EQ(BigInt::pow2(64).to_hex(), "0x10000000000000000");
  EXPECT_EQ(BigInt::pow2(100).bit_length(), 101u);
}

TEST(BigInt, AdditionCarryChains) {
  // Force carries across limb boundaries.
  BigInt a = BigInt::pow2(64) - BigInt(1);
  EXPECT_EQ((a + BigInt(1)).to_hex(), "0x10000000000000000");
  BigInt b = BigInt::pow2(256) - BigInt(1);
  EXPECT_EQ(((b + BigInt(1)) - BigInt::pow2(256)).signum(), 0);
}

TEST(BigInt, SignedArithmetic) {
  EXPECT_EQ((BigInt(7) + BigInt(-10)).to_int64(), -3);
  EXPECT_EQ((BigInt(-7) + BigInt(10)).to_int64(), 3);
  EXPECT_EQ((BigInt(-7) - BigInt(-10)).to_int64(), 3);
  EXPECT_EQ((BigInt(-7) * BigInt(-6)).to_int64(), 42);
  EXPECT_EQ((BigInt(7) * BigInt(-6)).to_int64(), -42);
  EXPECT_EQ((BigInt(0) * BigInt(-6)).signum(), 0);
}

TEST(BigInt, TruncatedDivisionSemantics) {
  // C++-style: quotient rounds toward zero, remainder keeps dividend sign.
  auto qr = [](long long a, long long b) {
    BigInt q, r;
    BigInt::divmod(BigInt(a), BigInt(b), q, r);
    return std::pair<long long, long long>(q.to_int64(), r.to_int64());
  };
  EXPECT_EQ(qr(7, 2), std::pair(3LL, 1LL));
  EXPECT_EQ(qr(-7, 2), std::pair(-3LL, -1LL));
  EXPECT_EQ(qr(7, -2), std::pair(-3LL, 1LL));
  EXPECT_EQ(qr(-7, -2), std::pair(3LL, -1LL));
}

TEST(BigInt, FloorAndCeilDivision) {
  EXPECT_EQ(BigInt::fdiv(BigInt(7), BigInt(2)).to_int64(), 3);
  EXPECT_EQ(BigInt::fdiv(BigInt(-7), BigInt(2)).to_int64(), -4);
  EXPECT_EQ(BigInt::cdiv(BigInt(7), BigInt(2)).to_int64(), 4);
  EXPECT_EQ(BigInt::cdiv(BigInt(-7), BigInt(2)).to_int64(), -3);
  EXPECT_EQ(BigInt::cdiv(BigInt(8), BigInt(2)).to_int64(), 4);
  EXPECT_EQ(BigInt::fdiv(BigInt(8), BigInt(2)).to_int64(), 4);
  // Negative divisor.
  EXPECT_EQ(BigInt::fdiv(BigInt(7), BigInt(-2)).to_int64(), -4);
  EXPECT_EQ(BigInt::cdiv(BigInt(7), BigInt(-2)).to_int64(), -3);
}

TEST(BigInt, DivisionByZeroThrows) {
  BigInt q, r;
  EXPECT_THROW(BigInt::divmod(BigInt(1), BigInt(0), q, r), DivisionByZero);
  EXPECT_THROW(BigInt(1) / BigInt(0), DivisionByZero);
  EXPECT_THROW(BigInt(1) % BigInt(0), DivisionByZero);
}

TEST(BigInt, DivexactEnforcesExactness) {
  EXPECT_EQ(BigInt::divexact(BigInt(42), BigInt(-7)).to_int64(), -6);
  EXPECT_THROW(BigInt::divexact(BigInt(43), BigInt(7)), InternalError);
}

TEST(BigInt, KnuthDNormalizationEdge) {
  // Divisor with high bit set in its top limb (no normalization shift) and
  // a case requiring the "add back" correction path (qhat one too large).
  BigInt a = (BigInt::pow2(128) - BigInt(1)) * BigInt::pow2(64);
  BigInt b = BigInt::pow2(128) - BigInt(1);
  BigInt q, r;
  BigInt::divmod(a, b, q, r);
  EXPECT_EQ(q, BigInt::pow2(64));
  EXPECT_TRUE(r.is_zero());

  // Classic add-back trigger: u = base^2 * (base/2), v = base/2 * base + 1.
  BigInt base = BigInt::pow2(64);
  BigInt u = base * base * BigInt::pow2(63);
  BigInt v = BigInt::pow2(63) * base + BigInt(1);
  BigInt::divmod(u, v, q, r);
  EXPECT_EQ(q * v + r, u);
  EXPECT_LT(BigInt::cmp_abs(r, v), 0);
}

TEST(BigInt, Shifts) {
  EXPECT_EQ((BigInt(1) << 130).bit_length(), 131u);
  EXPECT_EQ((BigInt(5) << 3).to_int64(), 40);
  EXPECT_EQ((BigInt(40) >> 3).to_int64(), 5);
  EXPECT_EQ((BigInt(41) >> 3).to_int64(), 5);
  EXPECT_EQ((BigInt(-41) >> 3).to_int64(), -5) << "magnitude shift";
  EXPECT_EQ(((BigInt(1) << 200) >> 200).to_int64(), 1);
  EXPECT_EQ((BigInt(7) >> 10).signum(), 0);
}

TEST(BigInt, Comparisons) {
  EXPECT_LT(BigInt(-5), BigInt(3));
  EXPECT_LT(BigInt(-5), BigInt(-3));
  EXPECT_GT(BigInt::pow2(64), BigInt::pow2(63));
  EXPECT_LT(-BigInt::pow2(64), -BigInt::pow2(63));
  EXPECT_EQ(BigInt(17), BigInt::from_decimal("17"));
  EXPECT_EQ(BigInt::cmp_abs(BigInt(-9), BigInt(5)), 1);
  EXPECT_EQ(BigInt::cmp_abs(BigInt(-9), BigInt(-9)), 0);
}

TEST(BigInt, GcdAndPow) {
  EXPECT_EQ(gcd(BigInt(12), BigInt(18)).to_int64(), 6);
  EXPECT_EQ(gcd(BigInt(-12), BigInt(18)).to_int64(), 6);
  EXPECT_EQ(gcd(BigInt(0), BigInt(-7)).to_int64(), 7);
  EXPECT_EQ(gcd(BigInt(0), BigInt(0)).signum(), 0);
  EXPECT_EQ(pow(BigInt(3), 0).to_int64(), 1);
  EXPECT_EQ(pow(BigInt(3), 7).to_int64(), 2187);
  EXPECT_EQ(pow(BigInt(-2), 11).to_int64(), -2048);
  EXPECT_EQ(pow(BigInt(2), 100), BigInt::pow2(100));
}

TEST(BigInt, ToDouble) {
  EXPECT_DOUBLE_EQ(BigInt(12345).to_double(), 12345.0);
  EXPECT_DOUBLE_EQ(BigInt(-12345).to_double(), -12345.0);
  EXPECT_NEAR(BigInt::pow2(70).to_double(), std::pow(2.0, 70), 1e4);
}

TEST(BigInt, HexFormatting) {
  EXPECT_EQ(BigInt(0).to_hex(), "0x0");
  EXPECT_EQ(BigInt(31).to_hex(), "0x1f");
  EXPECT_EQ(BigInt(-31).to_hex(), "-0x1f");
  EXPECT_EQ((BigInt::pow2(64) + BigInt(1)).to_hex(), "0x10000000000000001");
}

TEST(BigInt, UserLiteral) {
  EXPECT_EQ("123456789123456789123456789"_bi.to_decimal(),
            "123456789123456789123456789");
}

/// Randomized algebraic laws over mixed-size operands.
TEST(BigInt, RandomizedAlgebraicLaws) {
  Prng rng(20240707);
  auto random_value = [&](int max_limbs) {
    BigInt v;
    const int limbs = 1 + static_cast<int>(rng.below(
                              static_cast<std::uint64_t>(max_limbs)));
    for (int i = 0; i < limbs; ++i) {
      v <<= 64;
      v += BigInt(static_cast<unsigned long long>(rng.next()));
    }
    if (rng.coin()) v = -v;
    if (rng.below(16) == 0) v = BigInt(0);
    return v;
  };
  for (int iter = 0; iter < 300; ++iter) {
    const BigInt a = random_value(8);
    const BigInt b = random_value(8);
    const BigInt c = random_value(4);
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ((a + b) + c, a + (b + c));
    EXPECT_EQ(a * (b + c), a * b + a * c);
    EXPECT_EQ(a - b, -(b - a));
    if (!c.is_zero()) {
      BigInt q, r;
      BigInt::divmod(a, c, q, r);
      EXPECT_EQ(q * c + r, a);
      EXPECT_LT(BigInt::cmp_abs(r, c), 0);
      if (!r.is_zero()) {
        EXPECT_EQ(r.signum(), a.signum());
      }
      EXPECT_EQ(BigInt::divexact(a * c, c), a);
    }
    const std::size_t k = rng.below(130);
    EXPECT_EQ((a << k) >> k, a);
  }
}

TEST(BigInt, DecimalRoundTripFuzz) {
  Prng rng(515151);
  for (int iter = 0; iter < 100; ++iter) {
    BigInt v;
    const int limbs = 1 + static_cast<int>(rng.below(10));
    for (int i = 0; i < limbs; ++i) {
      v <<= 64;
      v += BigInt(static_cast<unsigned long long>(rng.next()));
    }
    if (rng.coin()) v = -v;
    EXPECT_EQ(BigInt::from_decimal(v.to_decimal()), v);
  }
}

TEST(BigInt, DivisionStressAgainstReconstruction) {
  // Dividend/divisor patterns that exercise qhat over/under-estimation:
  // long runs of 1-bits and near-power-of-two divisors.
  Prng rng(626262);
  for (int iter = 0; iter < 200; ++iter) {
    const std::size_t abits = 65 + rng.below(700);
    const std::size_t bbits = 64 + rng.below(abits - 64);
    BigInt a = BigInt::pow2(abits) - BigInt(1);      // all ones
    BigInt b = BigInt::pow2(bbits) - BigInt(static_cast<long long>(
                                          1 + rng.below(3)));
    if (rng.coin()) a -= BigInt(static_cast<long long>(rng.below(1000)));
    if (rng.coin()) a = -a;
    BigInt q, r;
    BigInt::divmod(a, b, q, r);
    EXPECT_EQ(q * b + r, a);
    EXPECT_LT(BigInt::cmp_abs(r, b), 0);
  }
}

TEST(BigInt, KaratsubaMatchesSchoolbook) {
  Prng rng(7);
  auto random_wide = [&](int limbs) {
    BigInt v;
    for (int i = 0; i < limbs; ++i) {
      v <<= 64;
      v += BigInt(static_cast<unsigned long long>(rng.next()));
    }
    return rng.coin() ? -v : v;
  };
  for (int iter = 0; iter < 20; ++iter) {
    const BigInt a = random_wide(30 + static_cast<int>(rng.below(40)));
    const BigInt b = random_wide(25 + static_cast<int>(rng.below(40)));
    BigInt::set_karatsuba_enabled(false);
    const BigInt school = a * b;
    BigInt::set_karatsuba_enabled(true);
    const BigInt kara = a * b;
    BigInt::set_karatsuba_enabled(false);
    EXPECT_EQ(school, kara);
  }
}

}  // namespace
}  // namespace pr
