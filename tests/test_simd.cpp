// Differential tests for the SIMD mod-p kernel layer (modular/simd/).
//
// The load-bearing property is the determinism contract: every vector
// kernel must produce BIT-IDENTICAL results to the portable scalar table
// on the same inputs -- per kernel over every table prime and a sweep of
// lengths (vector bodies, scalar tails, and the h < lane-width fallbacks
// all get hit), and end to end through the forward/inverse transforms,
// the batched Garner reconstruction, and the full BigInt NTT multiply
// with each available ISA forced.  The suite runs under ASan/UBSan in the
// sanitizer CI leg unchanged, which is what certifies the intrinsics
// paths (unaligned loads, lane extraction) are not relying on UB.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "bigint/bigint.hpp"
#include "bigint/bigint_ntt.hpp"
#include "modular/crt.hpp"
#include "modular/ntt.hpp"
#include "modular/simd/simd.hpp"
#include "modular/zp.hpp"
#include "support/prng.hpp"

namespace pr::modular::simd {
namespace {

/// Restores the startup ISA selection on scope exit, so a failing test
/// cannot leak a forced table into the rest of the suite.
struct IsaGuard {
  ~IsaGuard() { reset_forced_isa(); }
};

std::vector<Isa> vector_isas() {
  std::vector<Isa> out;
  for (Isa isa : available_isas()) {
    if (isa != Isa::kScalar) out.push_back(isa);
  }
  return out;
}

std::vector<Zp> random_residues(std::size_t n, const PrimeField& f,
                                Prng& rng) {
  std::vector<Zp> v(n);
  for (auto& x : v) x = f.from_u64(rng.next());
  return v;
}

const std::size_t kLens[] = {1, 2, 3, 4, 5, 7, 8, 12, 16, 20,
                             31, 32, 33, 64, 100, 128, 256, 512};

TEST(SimdDispatch, ScalarAlwaysAvailable) {
  EXPECT_NE(kernels_for(Isa::kScalar), nullptr);
  EXPECT_EQ(kernels_for(Isa::kScalar)->isa, Isa::kScalar);
  EXPECT_FALSE(available_isas().empty());
  EXPECT_EQ(available_isas().front(), Isa::kScalar);
  EXPECT_STREQ(isa_name(Isa::kScalar), "scalar");
  EXPECT_STREQ(isa_name(Isa::kAvx2), "avx2");
  EXPECT_STREQ(isa_name(Isa::kAvx512), "avx512");
}

TEST(SimdDispatch, ForceIsaRoundTrips) {
  IsaGuard guard;
  for (Isa isa : available_isas()) {
    ASSERT_TRUE(force_isa(isa)) << isa_name(isa);
    EXPECT_EQ(active_isa(), isa);
  }
  reset_forced_isa();
  // The startup pick is one of the available tables.
  bool found = false;
  for (Isa isa : available_isas()) found = found || (active_isa() == isa);
  EXPECT_TRUE(found);
}

TEST(SimdKernels, PointwiseAndConversionsMatchScalar) {
  Prng rng(11);
  const Kernels& ref = scalar_kernels();
  for (std::size_t pi = 0; pi < 5; ++pi) {
    const PrimeField f = PrimeField::trusted(nth_modulus(pi));
    const MontCtx ctx = f.ctx();
    for (Isa isa : vector_isas()) {
      const Kernels* vec = kernels_for(isa);
      ASSERT_NE(vec, nullptr);
      for (std::size_t n : kLens) {
        const std::vector<Zp> a = random_residues(n, f, rng);
        const std::vector<Zp> b = random_residues(n, f, rng);
        std::vector<Zp> r1 = a, r2 = a;

        ref.pointwise_mul(r1.data(), b.data(), n, ctx);
        vec->pointwise_mul(r2.data(), b.data(), n, ctx);
        for (std::size_t i = 0; i < n; ++i) {
          ASSERT_EQ(r1[i].v, r2[i].v)
              << "pointwise_mul " << isa_name(isa) << " n=" << n;
        }

        r1 = a;
        r2 = a;
        ref.pointwise_sqr(r1.data(), n, ctx);
        vec->pointwise_sqr(r2.data(), n, ctx);
        for (std::size_t i = 0; i < n; ++i) {
          ASSERT_EQ(r1[i].v, r2[i].v)
              << "pointwise_sqr " << isa_name(isa) << " n=" << n;
        }

        r1 = a;
        r2 = a;
        const Zp c = f.from_u64(rng.next());
        ref.scale(r1.data(), n, c, ctx);
        vec->scale(r2.data(), n, c, ctx);
        for (std::size_t i = 0; i < n; ++i) {
          ASSERT_EQ(r1[i].v, r2[i].v)
              << "scale " << isa_name(isa) << " n=" << n;
        }

        // from_u64 over raw words (not residues): must equal both the
        // scalar kernel and PrimeField::from_u64.
        std::vector<std::uint64_t> raw(n);
        for (auto& x : raw) x = rng.next();
        std::vector<Zp> m1(n), m2(n);
        ref.from_u64(raw.data(), m1.data(), n, ctx);
        vec->from_u64(raw.data(), m2.data(), n, ctx);
        for (std::size_t i = 0; i < n; ++i) {
          ASSERT_EQ(m1[i].v, m2[i].v)
              << "from_u64 " << isa_name(isa) << " n=" << n;
          ASSERT_EQ(m1[i].v, f.from_u64(raw[i]).v) << "from_u64 vs field";
        }

        std::vector<std::uint64_t> u1(n), u2(n);
        ref.to_u64(a.data(), u1.data(), n, ctx);
        vec->to_u64(a.data(), u2.data(), n, ctx);
        for (std::size_t i = 0; i < n; ++i) {
          ASSERT_EQ(u1[i], u2[i])
              << "to_u64 " << isa_name(isa) << " n=" << n;
          ASSERT_EQ(u1[i], f.to_u64(a[i])) << "to_u64 vs field";
        }
      }
    }
  }
}

TEST(SimdKernels, ButterflyLevelsMatchScalar) {
  Prng rng(12);
  const Kernels& ref = scalar_kernels();
  for (std::size_t pi = 0; pi < 5; ++pi) {
    const PrimeField f = PrimeField::trusted(nth_modulus(pi));
    const MontCtx ctx = f.ctx();
    for (Isa isa : vector_isas()) {
      const Kernels* vec = kernels_for(isa);
      ASSERT_NE(vec, nullptr);
      for (std::size_t n : {std::size_t{4}, std::size_t{8}, std::size_t{16},
                            std::size_t{64}, std::size_t{256},
                            std::size_t{1024}}) {
        const std::vector<Zp> a = random_residues(n, f, rng);
        // Any canonical residues exercise the butterfly identically to
        // real twiddles; tw[h + j] indexes below n for every level.
        const std::vector<Zp> tw = random_residues(n, f, rng);
        for (std::size_t h = 1; h < n; h <<= 1) {
          std::vector<Zp> r1 = a, r2 = a;
          ref.ntt_level(r1.data(), n, h, tw.data(), ctx);
          vec->ntt_level(r2.data(), n, h, tw.data(), ctx);
          for (std::size_t i = 0; i < n; ++i) {
            ASSERT_EQ(r1[i].v, r2[i].v)
                << "ntt_level " << isa_name(isa) << " n=" << n
                << " h=" << h << " i=" << i;
          }
        }
        const Zp im = f.from_u64(rng.next());
        std::vector<Zp> r1 = a, r2 = a;
        ref.radix4_first(r1.data(), n, im, ctx);
        vec->radix4_first(r2.data(), n, im, ctx);
        for (std::size_t i = 0; i < n; ++i) {
          ASSERT_EQ(r1[i].v, r2[i].v)
              << "radix4_first " << isa_name(isa) << " n=" << n;
        }
      }
    }
  }
}

TEST(SimdKernels, GarnerStageMatchesScalar) {
  Prng rng(13);
  const Kernels& ref = scalar_kernels();
  for (std::size_t pi = 0; pi < 4; ++pi) {
    const PrimeField f = PrimeField::trusted(nth_modulus(pi));
    const MontCtx ctx = f.ctx();
    for (Isa isa : vector_isas()) {
      const Kernels* vec = kernels_for(isa);
      ASSERT_NE(vec, nullptr);
      for (std::size_t count :
           {std::size_t{1}, std::size_t{3}, std::size_t{4}, std::size_t{7},
            std::size_t{8}, std::size_t{9}, std::size_t{16}, std::size_t{33},
            std::size_t{100}}) {
        for (std::size_t j : {std::size_t{1}, std::size_t{2}, std::size_t{3},
                              std::size_t{7}}) {
          const std::size_t stride = count;
          std::vector<std::uint64_t> digits((j + 1) * stride);
          for (auto& d : digits) d = rng.next() % f.prime();
          const std::vector<Zp> w = random_residues(j, f, rng);
          const Zp inv = f.from_u64(rng.next());
          std::vector<std::uint64_t> residues(count);
          for (auto& r : residues) r = rng.next() % f.prime();
          std::vector<std::uint64_t> o1(count), o2(count);
          ref.garner_stage(digits.data(), stride, j, w.data(), inv,
                           residues.data(), o1.data(), count, ctx);
          vec->garner_stage(digits.data(), stride, j, w.data(), inv,
                            residues.data(), o2.data(), count, ctx);
          for (std::size_t c = 0; c < count; ++c) {
            ASSERT_EQ(o1[c], o2[c])
                << "garner_stage " << isa_name(isa) << " count=" << count
                << " j=" << j << " c=" << c;
          }
        }
      }
    }
  }
}

TEST(SimdKernels, Acc192DotMatchesSequential) {
  Prng rng(14);
  const PrimeField f = PrimeField::trusted(nth_modulus(0));
  for (Isa isa : vector_isas()) {
    const Kernels* vec = kernels_for(isa);
    ASSERT_NE(vec, nullptr);
    for (std::size_t n : kLens) {
      // Worst-case words (all-ones limbs stress every carry chain) mixed
      // with random ones.
      std::vector<std::uint64_t> a(n);
      for (std::size_t i = 0; i < n; ++i) {
        a[i] = (i % 3 == 0) ? ~std::uint64_t{0} : rng.next();
      }
      const std::vector<Zp> b = random_residues(n, f, rng);
      Acc192 s1, s2;
      s1.lo = s2.lo = rng.next();
      s1.hi = s2.hi = rng.next();
      s1.carry = s2.carry = rng.next() & 0xff;
      for (std::size_t i = 0; i < n; ++i) s1.add(a[i], b[i].v);
      vec->acc192_dot(a.data(), b.data(), n, s2);
      ASSERT_EQ(s1.lo, s2.lo) << "acc192 lo " << isa_name(isa) << " n=" << n;
      ASSERT_EQ(s1.hi, s2.hi) << "acc192 hi " << isa_name(isa) << " n=" << n;
      ASSERT_EQ(s1.carry, s2.carry)
          << "acc192 carry " << isa_name(isa) << " n=" << n;
    }
  }
}

TEST(SimdEndToEnd, TransformsIdenticalAcrossIsas) {
  IsaGuard guard;
  Prng rng(15);
  for (std::size_t pi = 0; pi < 3; ++pi) {
    NttTables& tables = NttTables::for_prime(nth_modulus(pi));
    const PrimeField& f = tables.field();
    for (std::size_t n : {std::size_t{8}, std::size_t{64}, std::size_t{512},
                          std::size_t{2048}}) {
      const NttPlan& plan = tables.plan(n);
      const std::vector<Zp> a = random_residues(n, f, rng);

      ASSERT_TRUE(force_isa(Isa::kScalar));
      std::vector<Zp> fwd_ref = a;
      ntt_forward(fwd_ref, plan, f);
      std::vector<Zp> rt_ref = fwd_ref;
      ntt_inverse(rt_ref, plan, f);
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(rt_ref[i].v, a[i].v) << "scalar round-trip";
      }

      for (Isa isa : vector_isas()) {
        ASSERT_TRUE(force_isa(isa));
        std::vector<Zp> fwd = a;
        ntt_forward(fwd, plan, f);
        std::vector<Zp> rt = fwd;
        ntt_inverse(rt, plan, f);
        for (std::size_t i = 0; i < n; ++i) {
          ASSERT_EQ(fwd[i].v, fwd_ref[i].v)
              << "forward " << isa_name(isa) << " n=" << n << " i=" << i;
          ASSERT_EQ(rt[i].v, a[i].v)
              << "round-trip " << isa_name(isa) << " n=" << n;
        }
      }
    }
  }
}

TEST(SimdEndToEnd, BatchedReconstructionMatchesSingle) {
  IsaGuard guard;
  Prng rng(16);
  for (std::size_t k : {std::size_t{1}, std::size_t{2}, std::size_t{3},
                        std::size_t{5}, std::size_t{8}}) {
    std::vector<std::uint64_t> primes(k);
    for (std::size_t i = 0; i < k; ++i) primes[i] = nth_modulus(i);
    const CrtBasis basis(primes);
    const std::size_t count = 37;  // odd: exercises every vector tail
    std::vector<std::uint64_t> residues(k * count);
    for (std::size_t j = 0; j < k; ++j) {
      for (std::size_t c = 0; c < count; ++c) {
        residues[j * count + c] = rng.next() % primes[j];
      }
    }
    // Single-value scalar reference.
    ASSERT_TRUE(force_isa(Isa::kScalar));
    std::vector<std::uint64_t> want(k * count);
    std::vector<BigInt> want_big(count);
    {
      std::vector<std::uint64_t> rj(k);
      for (std::size_t c = 0; c < count; ++c) {
        for (std::size_t j = 0; j < k; ++j) rj[j] = residues[j * count + c];
        basis.reconstruct_limbs(rj.data(), k, want.data() + c * k);
        want_big[c] = basis.reconstruct(rj.data(), k);
      }
    }
    for (Isa isa : available_isas()) {
      ASSERT_TRUE(force_isa(isa));
      std::vector<std::uint64_t> got(k * count, 0xdeadbeef);
      basis.reconstruct_limbs_batch(residues.data(), count, k, got.data(),
                                    count);
      ASSERT_EQ(std::memcmp(want.data(), got.data(),
                            k * count * sizeof(std::uint64_t)),
                0)
          << "reconstruct_limbs_batch " << isa_name(isa) << " k=" << k;
      std::vector<BigInt> got_big(count);
      basis.reconstruct_batch(residues.data(), count, k, got_big.data(),
                              count);
      for (std::size_t c = 0; c < count; ++c) {
        ASSERT_EQ(want_big[c], got_big[c])
            << "reconstruct_batch " << isa_name(isa) << " k=" << k
            << " c=" << c;
      }
    }
  }
}

TEST(SimdEndToEnd, BigIntNttMulIdenticalAcrossIsas) {
  IsaGuard guard;
  Prng rng(17);
  for (std::size_t limbs : {std::size_t{8}, std::size_t{33},
                            std::size_t{260}}) {
    std::vector<std::uint64_t> al(limbs), bl(limbs);
    for (auto& x : al) x = rng.next();
    for (auto& x : bl) x = rng.next();
    al.back() |= 1;  // nonzero top limb
    bl.back() |= 1;
    const BigInt a = BigInt::from_limbs(al.data(), limbs, false);
    const BigInt b = BigInt::from_limbs(bl.data(), limbs, false);

    ASSERT_TRUE(force_isa(Isa::kScalar));
    detail::LimbStore ref;
    detail::mul_ntt_mag(al.data(), limbs, bl.data(), limbs, ref);
    detail::LimbStore ref_sq;
    detail::mul_ntt_mag(al.data(), limbs, al.data(), limbs, ref_sq);

    // The scalar NTT result is itself exact: cross-check against the
    // dispatcher's product (schoolbook/Karatsuba at these sizes).
    const BigInt exact = a * b;
    const BigInt got_scalar =
        BigInt::from_limbs(ref.data(), ref.size(), false);
    ASSERT_EQ(exact, got_scalar) << "scalar NTT vs exact product";

    for (Isa isa : vector_isas()) {
      ASSERT_TRUE(force_isa(isa));
      detail::LimbStore out;
      detail::mul_ntt_mag(al.data(), limbs, bl.data(), limbs, out);
      ASSERT_EQ(ref.size(), out.size()) << isa_name(isa);
      ASSERT_EQ(std::memcmp(ref.data(), out.data(),
                            ref.size() * sizeof(std::uint64_t)),
                0)
          << "mul_ntt_mag " << isa_name(isa) << " limbs=" << limbs;
      detail::LimbStore out_sq;
      detail::mul_ntt_mag(al.data(), limbs, al.data(), limbs, out_sq);
      ASSERT_EQ(ref_sq.size(), out_sq.size()) << isa_name(isa);
      ASSERT_EQ(std::memcmp(ref_sq.data(), out_sq.data(),
                            ref_sq.size() * sizeof(std::uint64_t)),
                0)
          << "sqr mul_ntt_mag " << isa_name(isa) << " limbs=" << limbs;
    }
  }
}

}  // namespace
}  // namespace pr::modular::simd
