// The multimodular subsystem: word-sized prime fields, CRT reconstruction,
// the multimodular remainder sequence and tree combine -- all proven
// bit-identical to the exact BigInt paths -- plus BigInt::mod_u64 and the
// mod-p verifier.
#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "core/parallel_driver.hpp"
#include "core/root_finder.hpp"
#include "core/tree_builder.hpp"
#include "gen/classic_polys.hpp"
#include "gen/matrix_polys.hpp"
#include "instr/counters.hpp"
#include "linalg/polymat22.hpp"
#include "modular/crt.hpp"
#include "modular/modular_combine.hpp"
#include "modular/modular_prs.hpp"
#include "modular/polyzp.hpp"
#include "modular/zp.hpp"
#include "poly/remainder_sequence.hpp"
#include "support/error.hpp"
#include "support/prng.hpp"
#include "verify/certificate.hpp"

namespace pr {
namespace {

using modular::CrtBasis;
using modular::ModularConfig;
using modular::PolyZp;
using modular::PrimeField;
using modular::PrsBound;
using modular::Zp;

constexpr std::uint64_t kSmallPrime = 1000003;  // forced-prime test seam

Poly random_poly(int degree, long long span, Prng& rng) {
  std::vector<BigInt> c(static_cast<std::size_t>(degree) + 1);
  for (auto& x : c) x = BigInt(rng.range(-span, span));
  while (c.back().is_zero()) c.back() = BigInt(rng.range(-span, span));
  return Poly(std::move(c));
}

void expect_sequences_equal(const RemainderSequence& a,
                            const RemainderSequence& b, const char* what) {
  ASSERT_EQ(a.n, b.n) << what;
  ASSERT_EQ(a.nstar, b.nstar) << what;
  ASSERT_EQ(a.F.size(), b.F.size()) << what;
  ASSERT_EQ(a.Q.size(), b.Q.size()) << what;
  ASSERT_EQ(a.c.size(), b.c.size()) << what;
  for (std::size_t i = 0; i < a.F.size(); ++i) {
    EXPECT_EQ(a.F[i], b.F[i]) << what << ": F_" << i;
  }
  for (std::size_t i = 1; i < a.Q.size(); ++i) {
    EXPECT_EQ(a.Q[i], b.Q[i]) << what << ": Q_" << i;
  }
  for (std::size_t i = 0; i < a.c.size(); ++i) {
    EXPECT_EQ(a.c[i], b.c[i]) << what << ": c_" << i;
  }
  EXPECT_EQ(a.gcd_part, b.gcd_part) << what;
}

// --- primes and fields ------------------------------------------------------

TEST(ZpField, PrimalityTest) {
  EXPECT_TRUE(modular::is_prime_u64(2));
  EXPECT_TRUE(modular::is_prime_u64(3));
  EXPECT_TRUE(modular::is_prime_u64(kSmallPrime));
  EXPECT_TRUE(modular::is_prime_u64((1ull << 61) - 1));  // Mersenne
  EXPECT_FALSE(modular::is_prime_u64(1));
  EXPECT_FALSE(modular::is_prime_u64(1000001));  // 101 * 9901
  EXPECT_FALSE(modular::is_prime_u64(3215031751ull));  // strong pseudoprime
}

TEST(ZpField, ModulusTableIsDistinctPrimesBelow2To62) {
  std::vector<std::uint64_t> seen;
  for (std::size_t i = 0; i < 32; ++i) {
    const std::uint64_t p = modular::nth_modulus(i);
    EXPECT_TRUE(modular::is_prime_u64(p)) << p;
    EXPECT_LT(p, 1ull << 62);
    EXPECT_GT(p, 1ull << 61);  // dense near the top of the range
    // NTT-friendly by construction: 2-adic order >= 20.
    EXPECT_EQ(p % (1ull << 20), 1u) << p;
    for (std::uint64_t q : seen) EXPECT_NE(p, q);
    seen.push_back(p);
  }
  // Deterministic: asking again returns the same primes.
  for (std::size_t i = 0; i < 32; ++i) {
    EXPECT_EQ(modular::nth_modulus(i), seen[i]);
  }
}

TEST(ZpField, ArithmeticMatchesWideReference) {
  const std::uint64_t p = modular::nth_modulus(0);
  const PrimeField f(p);
  Prng rng(123);
  for (int it = 0; it < 200; ++it) {
    const std::uint64_t a = rng.next() % p;
    const std::uint64_t b = rng.next() % p;
    const Zp za = f.from_u64(a);
    const Zp zb = f.from_u64(b);
    EXPECT_EQ(f.to_u64(za), a);
    EXPECT_EQ(f.to_u64(f.add(za, zb)), (a + b) % p);  // p < 2^62: no wrap
    EXPECT_EQ(f.to_u64(f.sub(za, zb)), (a + p - b) % p);
    const auto wide = static_cast<unsigned __int128>(a) * b;
    EXPECT_EQ(f.to_u64(f.mul(za, zb)), static_cast<std::uint64_t>(wide % p));
    if (a != 0) {
      EXPECT_EQ(f.to_u64(f.mul(za, f.inv(za))), 1u);
    }
  }
  EXPECT_EQ(f.to_u64(f.pow(f.from_u64(3), p - 1)), 1u);  // Fermat
}

TEST(ZpField, ReduceMatchesModU64) {
  const PrimeField f(kSmallPrime);
  Prng rng(77);
  for (int it = 0; it < 50; ++it) {
    BigInt x(1);
    for (int limbs = 0; limbs < 3; ++limbs) {
      x *= BigInt(static_cast<unsigned long long>(rng.next() | 1));
    }
    if (rng.coin()) x = -x;
    EXPECT_EQ(f.to_u64(f.reduce(x)), x.mod_u64(kSmallPrime));
  }
}

// --- BigInt::mod_u64 --------------------------------------------------------

TEST(BigIntModU64, SmallAndEdgeCases) {
  EXPECT_EQ(BigInt(0).mod_u64(7), 0u);
  EXPECT_EQ(BigInt(13).mod_u64(7), 6u);
  EXPECT_EQ(BigInt(14).mod_u64(7), 0u);
  EXPECT_EQ(BigInt(123456789).mod_u64(1), 0u);
  EXPECT_THROW(BigInt(5).mod_u64(0), DivisionByZero);
}

TEST(BigIntModU64, NegativeGivesTrueResidue) {
  // True mathematical residue in [0, m), not the symmetric/truncated one.
  EXPECT_EQ(BigInt(-1).mod_u64(7), 6u);
  EXPECT_EQ(BigInt(-13).mod_u64(7), 1u);
  EXPECT_EQ(BigInt(-14).mod_u64(7), 0u);
}

TEST(BigIntModU64, MultiLimbMatchesReconstruction) {
  Prng rng(42);
  const std::uint64_t m = modular::nth_modulus(1);
  for (int it = 0; it < 40; ++it) {
    BigInt x(static_cast<long long>(rng.range(-1000000, 1000000)));
    for (int k = 0; k < 4; ++k) {
      x *= BigInt(static_cast<unsigned long long>(rng.next()));
      x += BigInt(static_cast<long long>(rng.range(-99, 99)));
    }
    const std::uint64_t r = x.mod_u64(m);
    ASSERT_LT(r, m);
    // (x - r) must be divisible by m: check via a second reduction of the
    // difference computed in BigInt arithmetic.
    EXPECT_EQ((x - BigInt(static_cast<unsigned long long>(r))).mod_u64(m), 0u);
  }
}

// --- PolyZp -----------------------------------------------------------------

TEST(PolyZpTest, ImageCommutesWithArithmetic) {
  const PrimeField f(modular::nth_modulus(0));
  Prng rng(7);
  for (int it = 0; it < 20; ++it) {
    const Poly a = random_poly(6, 50, rng);
    const Poly b = random_poly(4, 50, rng);
    const PolyZp ia = PolyZp::from_poly(a, f);
    const PolyZp ib = PolyZp::from_poly(b, f);
    EXPECT_EQ(PolyZp::from_poly(a + b, f), ia.add(ib, f));
    EXPECT_EQ(PolyZp::from_poly(a - b, f), ia.sub(ib, f));
    EXPECT_EQ(PolyZp::from_poly(a * b, f), ia.mul(ib, f));
    EXPECT_EQ(PolyZp::from_poly(a.derivative(), f), ia.derivative(f));
    const Zp x = f.from_u64(rng.next() % 1000);
    EXPECT_EQ(PolyZp::from_poly(a, f).eval(x, f),
              f.reduce(a.eval(BigInt(
                  static_cast<unsigned long long>(f.to_u64(x))))));
  }
}

TEST(PolyZpTest, DivmodIsEuclidean) {
  const PrimeField f(modular::nth_modulus(0));
  Prng rng(8);
  for (int it = 0; it < 20; ++it) {
    const PolyZp a = PolyZp::from_poly(random_poly(7, 99, rng), f);
    const PolyZp b = PolyZp::from_poly(random_poly(3, 99, rng), f);
    PolyZp q, r;
    PolyZp::divmod(a, b, f, q, r);
    EXPECT_LT(r.degree(), b.degree());
    EXPECT_EQ(q.mul(b, f).add(r, f), a);
  }
}

// --- CRT --------------------------------------------------------------------

TEST(CrtTest, RoundTripsSignedValues) {
  std::vector<std::uint64_t> primes;
  for (std::size_t i = 0; i < 6; ++i) primes.push_back(modular::nth_modulus(i));
  const CrtBasis basis(primes);
  Prng rng(9);
  for (int it = 0; it < 60; ++it) {
    BigInt x(static_cast<long long>(rng.range(-5, 5)));
    const int limbs = static_cast<int>(rng.below(5));
    for (int k = 0; k < limbs; ++k) {
      x *= BigInt(static_cast<unsigned long long>(rng.next() | 1));
      if (rng.coin()) x = -x;
    }
    const std::size_t k = basis.primes_for_bits(x.bit_length() + 1);
    std::vector<std::uint64_t> residues(k);
    for (std::size_t j = 0; j < k; ++j) residues[j] = x.mod_u64(primes[j]);
    EXPECT_EQ(basis.reconstruct(residues.data(), k), x) << "limbs=" << limbs;
  }
}

TEST(CrtTest, PrimesForBitsIsMonotoneAndSufficient) {
  std::vector<std::uint64_t> primes;
  for (std::size_t i = 0; i < 8; ++i) primes.push_back(modular::nth_modulus(i));
  const CrtBasis basis(primes);
  std::size_t prev = 0;
  for (std::size_t bits = 1; bits < 480; bits += 37) {
    const std::size_t k = basis.primes_for_bits(bits);
    EXPECT_GE(k, prev);
    EXPECT_GE(61 * k, bits + 2);  // each prime contributes >= 61 bits
    prev = k;
  }
  EXPECT_THROW(basis.primes_for_bits(100000), InternalError);
}

TEST(CrtTest, PrsBoundDominatesActualCoefficients) {
  Prng rng(11);
  const Poly f0 = random_poly(20, 99, rng);
  const PrsBound bound(f0, f0.derivative());
  const RemainderSequence rs = compute_remainder_sequence(f0);
  for (int i = 1; i <= rs.n; ++i) {
    EXPECT_GE(bound.bits_for(i),
              rs.F[static_cast<std::size_t>(i)].max_coeff_bits())
        << "level " << i;
  }
}

// --- multimodular remainder sequence ----------------------------------------

ModularConfig forced_on(int threads = 1) {
  ModularConfig cfg;
  cfg.enabled = true;
  cfg.num_threads = threads;
  cfg.min_degree = 2;             // force the fast path even on small inputs
  cfg.min_combine_bits = 1;       // same for the tree combines
  cfg.combine_cost_gate = false;  // correctness tests, not a perf contest
  return cfg;
}

TEST(MultimodularPrs, DifferentialSweepAgainstExact) {
  Prng rng(0x5eed);
  // Low degrees get wide coefficients so the Hadamard bound still demands
  // >= 3 primes (the worthwhile() threshold); high degrees grow on their
  // own and keep the exact reference affordable with narrow coefficients.
  const std::pair<int, long long> cases[] = {
      {8, 1000000000000000LL}, {16, 1000000LL}, {24, 40}, {33, 40},
      {48, 40},               {64, 20},        {96, 10},
  };
  for (const auto& [degree, span] : cases) {
    const Poly f0 = random_poly(degree, span, rng);
    const RemainderSequence exact = compute_remainder_sequence(f0);
    for (int threads : {1, 4}) {
      auto fast = modular::compute_remainder_sequence_multimodular(
          f0, forced_on(threads));
      ASSERT_TRUE(fast.has_value()) << "degree " << degree;
      expect_sequences_equal(exact, *fast, "sweep");
    }
  }
}

TEST(MultimodularPrs, SmallDegreeDeclines) {
  Prng rng(3);
  const Poly f0 = random_poly(8, 20, rng);
  ModularConfig cfg = forced_on();
  cfg.min_degree = 24;
  EXPECT_FALSE(
      modular::compute_remainder_sequence_multimodular(f0, cfg).has_value());
}

TEST(MultimodularPrs, RepeatedRootsFallBackToExact) {
  const Poly w = wilkinson(6);
  const Poly f0 = w * w;  // every root doubled: extended sequence
  instr::reset_modular();
  const auto fast =
      modular::compute_remainder_sequence_multimodular(f0, forced_on());
  EXPECT_FALSE(fast.has_value());
  EXPECT_GE(instr::modular_counts().fallbacks, 1u);
}

/// Crafts a degree-n monic input whose lc(F_2) is a nonzero multiple of
/// kSmallPrime: lc(F_2) = (n-1)*a_{n-1}^2 - 2n*a_{n-2} for monic f0, so
/// pick a_{n-1} = 1 and a_{n-2} = (n-1) * inv(2n) mod kSmallPrime.
Poly crafted_bad_prime_input(int n, Prng& rng) {
  const PrimeField f(kSmallPrime);
  const std::uint64_t t = f.to_u64(
      f.mul(f.from_u64(static_cast<std::uint64_t>(n - 1)),
            f.inv(f.from_u64(static_cast<std::uint64_t>(2 * n)))));
  std::vector<BigInt> c(static_cast<std::size_t>(n) + 1);
  for (auto& x : c) x = BigInt(rng.range(-9, 9));
  c[static_cast<std::size_t>(n)] = BigInt(1);
  c[static_cast<std::size_t>(n - 1)] = BigInt(1);
  c[static_cast<std::size_t>(n - 2)] = BigInt(static_cast<unsigned long long>(t));
  return Poly(std::move(c));
}

TEST(MultimodularPrs, BadPrimeIsDetectedAndReplaced) {
  Prng rng(21);
  const Poly f0 = crafted_bad_prime_input(32, rng);
  const RemainderSequence exact = compute_remainder_sequence(f0);
  // Sanity: the sampled "bad" prime really kills lc(F_2) without killing
  // the selection screen (it does not divide lc(F_0) * lc(F_1)).
  ASSERT_EQ(exact.F[2].leading().mod_u64(kSmallPrime), 0u);
  ASSERT_FALSE(exact.F[2].leading().is_zero());

  ModularConfig cfg = forced_on();
  cfg.forced_primes = {kSmallPrime};
  instr::reset_modular();
  const auto fast = modular::compute_remainder_sequence_multimodular(f0, cfg);
  ASSERT_TRUE(fast.has_value());
  expect_sequences_equal(exact, *fast, "bad prime");
  EXPECT_GE(instr::modular_counts().bad_primes, 1u);
}

TEST(MultimodularPrs, PrimeDividingLeadingCoeffSkippedAtSelection) {
  Prng rng(22);
  Poly f0 = random_poly(24, 9, rng);
  std::vector<BigInt> c = f0.coeffs();
  c.back() = BigInt(static_cast<unsigned long long>(kSmallPrime));
  f0 = Poly(std::move(c));
  const RemainderSequence exact = compute_remainder_sequence(f0);

  ModularConfig cfg = forced_on();
  cfg.forced_primes = {kSmallPrime};  // divides lc(F_0): never selected
  instr::reset_modular();
  const auto fast = modular::compute_remainder_sequence_multimodular(f0, cfg);
  ASSERT_TRUE(fast.has_value());
  expect_sequences_equal(exact, *fast, "lc skip");
  EXPECT_EQ(instr::modular_counts().bad_primes, 0u);
}

TEST(MultimodularPrs, BatchAndWaveDeterminismMatrix) {
  Prng rng(0xba7c4);
  // Every scheduling-knob combination -- batched vs per-image tasks, waved
  // vs inline CRT, at 1/2/8 threads -- must reproduce the exact sequence
  // bit for bit: partitioning is scheduling, never arithmetic.
  const std::pair<int, long long> cases[] = {{30, 1000000LL}, {60, 40}};
  for (const auto& [degree, span] : cases) {
    const Poly f0 = random_poly(degree, span, rng);
    const RemainderSequence exact = compute_remainder_sequence(f0);
    for (int threads : {1, 2, 8}) {
      for (bool batch : {false, true}) {
        ModularConfig cfg = forced_on(threads);
        cfg.batch_images = batch;
        cfg.crt_wave_min_work = 1;  // every level fans out into waves
        const auto fast =
            modular::compute_remainder_sequence_multimodular(f0, cfg);
        ASSERT_TRUE(fast.has_value())
            << "degree " << degree << " threads " << threads;
        expect_sequences_equal(exact, *fast, "batch/wave matrix");
      }
    }
  }
}

TEST(MultimodularPrs, ImageBatchSizingCoversEverySlot) {
  Prng rng(0xbb);
  // Degree 26 with wide coefficients: many cheap images, so batching
  // groups them; more workers shrink the batch to keep the pool fed.
  const Poly f0 = random_poly(26, 1000000000000LL, rng);
  ModularConfig cfg = forced_on();
  modular::MultimodularPrs prs(f0, cfg);
  ASSERT_TRUE(prs.worthwhile());
  for (int threads : {1, 2, 8}) {
    const std::size_t b = prs.image_batch(threads);
    ASSERT_GE(b, 1u);
    EXPECT_EQ(prs.num_image_tasks(threads), (prs.num_slots() + b - 1) / b);
  }
  EXPECT_GE(prs.image_batch(1), prs.image_batch(8));
  EXPECT_GT(prs.image_batch(1), 1u) << "cheap images should batch";
  cfg.batch_images = false;
  modular::MultimodularPrs unbatched(f0, cfg);
  EXPECT_EQ(unbatched.image_batch(8), 1u);
  EXPECT_EQ(unbatched.num_image_tasks(1), unbatched.num_slots());
}

// --- multimodular tree combine ----------------------------------------------

TEST(ModularCombineTest, MatchesExactCombine) {
  Prng rng(31);
  // Mid-sequence leaves of a degree-32 input: their U matrices carry
  // hundreds of coefficient bits, so every combine clears the >= 3 prime
  // threshold once min_combine_bits is lowered.
  const Poly f0 = random_poly(32, 60, rng);
  const RemainderSequence rs = compute_remainder_sequence(f0);

  const PolyMat22 t9 = t_leaf(rs, 9);
  const PolyMat22 t11 = t_leaf(rs, 11);
  const PolyMat22 t9_11 = t_combine(t11, t9, rs, 10);
  const PolyMat22 t13 = t_leaf(rs, 13);
  const PolyMat22 t15 = t_leaf(rs, 15);
  const PolyMat22 t13_15 = t_combine(t15, t13, rs, 14);
  const PolyMat22 t9_15 = t_combine(t13_15, t9_11, rs, 12);

  const ModularConfig cfg = forced_on();
  const auto m1 = modular::modular_t_combine(t11, t9, rs, 10, cfg);
  ASSERT_TRUE(m1.has_value());
  EXPECT_EQ(*m1, t9_11);
  const auto m2 = modular::modular_t_combine(t13_15, t9_11, rs, 12, cfg);
  ASSERT_TRUE(m2.has_value());
  EXPECT_EQ(*m2, t9_15);
  // Threaded one-shot form agrees too.
  const auto m2t =
      modular::modular_t_combine(t13_15, t9_11, rs, 12, forced_on(4));
  ASSERT_TRUE(m2t.has_value());
  EXPECT_EQ(*m2t, t9_15);
}

TEST(ModularCombineTest, FusedNttCombineMatchesExact) {
  Prng rng(0xf00d);
  // A fabricated combine with unit c's (s == 1, so the exact division is
  // trivially exact) and ~90-coefficient entries: the structural output
  // lengths clear the fused frequency-domain floor, so run_image_ntt
  // carries the whole per-prime combine.
  RemainderSequence rs;
  rs.n = 3;
  rs.nstar = 3;
  rs.c.assign(4, BigInt(1));
  rs.Q.assign(3, Poly());
  rs.Q[2] = random_poly(1, 1LL << 44, rng);
  const auto long_mat = [&rng] {
    PolyMat22 m;
    for (int r = 0; r < 2; ++r) {
      for (int c = 0; c < 2; ++c) m.at(r, c) = random_poly(89, 1LL << 44, rng);
    }
    return m;
  };
  const PolyMat22 tl = long_mat();
  const PolyMat22 tr = long_mat();
  const PolyMat22 exact = t_combine(tr, tl, rs, 2);

  ModularConfig cfg = forced_on();
  instr::reset_modular();
  const auto fused = modular::modular_t_combine(tr, tl, rs, 2, cfg);
  ASSERT_TRUE(fused.has_value());
  EXPECT_EQ(*fused, exact);
  // 16 transforms per slot (12 forward + 4 inverse): proof the fused
  // frequency-domain path actually carried the combine.
  EXPECT_GE(instr::modular_counts().ntt_transforms, 16u);

  cfg.use_ntt = false;  // schoolbook images must agree bit for bit
  instr::reset_modular();
  const auto elementwise = modular::modular_t_combine(tr, tl, rs, 2, cfg);
  ASSERT_TRUE(elementwise.has_value());
  EXPECT_EQ(*elementwise, exact);
  EXPECT_EQ(instr::modular_counts().ntt_transforms, 0u);

  // A forced low-2-adic prime caps its transform size below the plan, so
  // that slot falls back to elementwise mid-flight while the other slots
  // stay fused -- the mixed schedule still reconstructs exactly.
  ModularConfig mixed = forced_on(4);
  mixed.forced_primes = {kSmallPrime};
  const auto m = modular::modular_t_combine(tr, tl, rs, 2, mixed);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(*m, exact);
}

TEST(ModularCombineTest, SmallCombineDeclines) {
  Prng rng(32);
  const Poly f0 = random_poly(8, 5, rng);
  const RemainderSequence rs = compute_remainder_sequence(f0);
  ModularConfig cfg = forced_on();
  cfg.min_combine_bits = 1u << 20;  // nothing this small qualifies
  EXPECT_FALSE(
      modular::modular_t_combine(t_leaf(rs, 3), t_leaf(rs, 1), rs, 2, cfg)
          .has_value());
}

TEST(ModularCombineTest, SequentialTreeMatchesExactTree) {
  Prng rng(33);
  const auto input = paper_input(10, rng);
  const RootFinderConfig base;
  const auto exact = find_real_roots(input.poly, base);
  RootFinderConfig mod = base;
  mod.modular = forced_on();
  const auto fast = find_real_roots(input.poly, mod);
  EXPECT_EQ(exact.roots, fast.roots);
  EXPECT_EQ(exact.multiplicities, fast.multiplicities);
}

// --- end-to-end bit-identity ------------------------------------------------

TEST(ModularEndToEnd, RootReportsBitIdenticalAcrossThreads) {
  // Seed 99 matches test_parallel.cpp: these workloads are known to stay
  // on the parallel fast path (squarefree, normal sequences).
  Prng rng(99);
  std::vector<Poly> inputs;
  inputs.push_back(wilkinson(12));
  inputs.push_back(paper_input(10, rng).poly);  // Berkowitz charpoly
  inputs.push_back(random_jacobi_poly(14, 6, rng));

  for (const Poly& p : inputs) {
    RootFinderConfig cfg;
    cfg.mu_bits = 24;
    const auto exact = find_real_roots(p, cfg);

    RootFinderConfig mod = cfg;
    mod.modular = forced_on();
    const auto seq = find_real_roots(p, mod);
    EXPECT_EQ(exact.roots, seq.roots) << "sequential, n=" << p.degree();

    ParallelConfig pc;
    for (int threads : {1, 2, 8}) {
      pc.num_threads = threads;
      const auto par = find_real_roots_parallel(p, mod, pc);
      EXPECT_FALSE(par.used_sequential_fallback) << "n=" << p.degree();
      EXPECT_EQ(exact.roots, par.report.roots)
          << "threads=" << threads << ", n=" << p.degree();
    }
  }
}

// --- the mod-p verifier -----------------------------------------------------

TEST(VerifyModP, AcceptsTrueSequenceRejectsCorrupted) {
  Prng rng(55);
  const Poly f0 = random_poly(18, 30, rng);
  RemainderSequence rs = compute_remainder_sequence(f0);
  const std::uint64_t p = modular::nth_modulus(0);
  EXPECT_TRUE(verify_remainder_sequence_mod(rs, p));

  // Corrupt one interior coefficient of F_3.
  std::vector<BigInt> c = rs.F[3].coeffs();
  c[1] += BigInt(1);
  rs.F[3] = Poly(std::move(c));
  std::string why;
  EXPECT_FALSE(verify_remainder_sequence_mod(rs, p, &why));
  EXPECT_FALSE(why.empty());
}

TEST(VerifyModP, MultimodularOutputPassesVerifier) {
  Prng rng(56);
  const Poly f0 = random_poly(32, 25, rng);
  const auto fast =
      modular::compute_remainder_sequence_multimodular(f0, forced_on());
  ASSERT_TRUE(fast.has_value());
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(verify_remainder_sequence_mod(*fast, modular::nth_modulus(i)));
  }
}

}  // namespace
}  // namespace pr
