#include "poly/poly.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "support/error.hpp"
#include "support/prng.hpp"

namespace pr {
namespace {

Poly random_poly(Prng& rng, int deg, long long span = 50) {
  std::vector<BigInt> c;
  for (int i = 0; i <= deg; ++i) c.emplace_back(rng.range(-span, span));
  if (c.back().is_zero()) c.back() = BigInt(1);
  return Poly(std::move(c));
}

TEST(Poly, ZeroPolynomial) {
  Poly z;
  EXPECT_TRUE(z.is_zero());
  EXPECT_EQ(z.degree(), -1);
  EXPECT_EQ(z.coeff(0).signum(), 0);
  EXPECT_EQ(z.coeff(5).signum(), 0);
  EXPECT_EQ(z.to_string(), "0");
  EXPECT_THROW(z.leading(), InvalidArgument);
}

TEST(Poly, NormalizationDropsLeadingZeros) {
  Poly p(std::vector<BigInt>{BigInt(1), BigInt(2), BigInt(0), BigInt(0)});
  EXPECT_EQ(p.degree(), 1);
  Poly q{3, 0, 0};
  EXPECT_EQ(q.degree(), 0);
}

TEST(Poly, ConstructorsAndAccessors) {
  Poly p{1, -3, 2};  // 2x^2 - 3x + 1
  EXPECT_EQ(p.degree(), 2);
  EXPECT_EQ(p.coeff(0).to_int64(), 1);
  EXPECT_EQ(p.coeff(1).to_int64(), -3);
  EXPECT_EQ(p.leading().to_int64(), 2);
  EXPECT_EQ(Poly::constant(BigInt(5)).degree(), 0);
  EXPECT_TRUE(Poly::constant(BigInt(0)).is_zero());
  EXPECT_EQ(Poly::monomial(BigInt(3), 4).degree(), 4);
  EXPECT_TRUE(Poly::monomial(BigInt(0), 4).is_zero());
  EXPECT_EQ(Poly::x().degree(), 1);
}

TEST(Poly, ArithmeticBasics) {
  Poly a{1, 2, 3};
  Poly b{4, 5};
  EXPECT_EQ(a + b, (Poly{5, 7, 3}));
  EXPECT_EQ(a - b, (Poly{-3, -3, 3}));
  EXPECT_EQ(a * b, (Poly{4, 13, 22, 15}));
  EXPECT_EQ(-a, (Poly{-1, -2, -3}));
  EXPECT_EQ(BigInt(2) * b, (Poly{8, 10}));
  EXPECT_TRUE((a - a).is_zero());
  EXPECT_TRUE((a * Poly{}).is_zero());
}

TEST(Poly, CancellationTrimsDegree) {
  Poly a{0, 0, 1};
  Poly b{1, 0, 1};
  EXPECT_EQ((a - b).degree(), 0);
  EXPECT_EQ((a - b).coeff(0).to_int64(), -1);
}

TEST(Poly, Derivative) {
  EXPECT_EQ((Poly{7}).derivative().degree(), -1);
  EXPECT_EQ((Poly{1, 2, 3, 4}).derivative(), (Poly{2, 6, 12}));
  EXPECT_TRUE(Poly{}.derivative().is_zero());
}

TEST(Poly, Evaluation) {
  Poly p{1, -3, 2};  // 2x^2 - 3x + 1 = (2x-1)(x-1)
  EXPECT_EQ(p.eval(BigInt(0)).to_int64(), 1);
  EXPECT_EQ(p.eval(BigInt(1)).to_int64(), 0);
  EXPECT_EQ(p.eval(BigInt(3)).to_int64(), 10);
  EXPECT_EQ(p.sign_at(BigInt(-5)), 1);
  EXPECT_EQ(p.sign_at(BigInt(1)), 0);
}

TEST(Poly, ContentAndPrimitivePart) {
  Poly p{6, -9, 12};
  EXPECT_EQ(p.content().to_int64(), 3);
  EXPECT_EQ(p.primitive_part(), (Poly{2, -3, 4}));
  Poly negl{6, -12};  // leading negative
  EXPECT_EQ(negl.primitive_part(), (Poly{-1, 2}))
      << "primitive part must have positive leading coefficient";
  EXPECT_EQ(Poly{}.content().signum(), 0);
}

TEST(Poly, ShiftedUp) {
  EXPECT_EQ((Poly{1, 2}).shifted_up(2), (Poly{0, 0, 1, 2}));
  EXPECT_TRUE(Poly{}.shifted_up(3).is_zero());
}

TEST(Poly, DivexactScalar) {
  EXPECT_EQ((Poly{6, -9}).divexact_scalar(BigInt(3)), (Poly{2, -3}));
  EXPECT_THROW((Poly{7}).divexact_scalar(BigInt(3)), InternalError);
}

TEST(Poly, PseudoDivisionIdentity) {
  Prng rng(11);
  for (int iter = 0; iter < 100; ++iter) {
    const Poly a = random_poly(rng, 2 + static_cast<int>(rng.below(6)));
    const Poly b = random_poly(rng, 1 + static_cast<int>(rng.below(3)));
    if (a.degree() < b.degree()) continue;
    Poly q, r;
    Poly::pseudo_divmod(a, b, q, r);
    // lc(b)^(da-db+1) * a == q*b + r with deg r < deg b.
    const unsigned e = static_cast<unsigned>(a.degree() - b.degree() + 1);
    const Poly lhs = Poly::constant(pow(b.leading(), e)) * a;
    EXPECT_EQ(lhs, q * b + r);
    EXPECT_LT(r.degree(), b.degree());
  }
}

TEST(Poly, PseudoDivisionPreconditions) {
  Poly q, r;
  EXPECT_THROW(Poly::pseudo_divmod(Poly{1, 1}, Poly{}, q, r),
               InvalidArgument);
  EXPECT_THROW(Poly::pseudo_divmod(Poly{1}, Poly{1, 1}, q, r),
               InvalidArgument);
}

TEST(Poly, DivexactPolynomial) {
  Prng rng(13);
  for (int iter = 0; iter < 100; ++iter) {
    const Poly a = random_poly(rng, static_cast<int>(rng.below(5)));
    const Poly b = random_poly(rng, static_cast<int>(rng.below(4)));
    EXPECT_EQ(Poly::divexact(a * b, b), a);
  }
  EXPECT_THROW(Poly::divexact(Poly{1, 1, 1}, Poly{1, 1}), InternalError);
}

TEST(Poly, GcdOfProducts) {
  Prng rng(17);
  for (int iter = 0; iter < 60; ++iter) {
    const Poly g = random_poly(rng, 1 + static_cast<int>(rng.below(3)));
    const Poly a = random_poly(rng, static_cast<int>(rng.below(4)));
    const Poly b = random_poly(rng, static_cast<int>(rng.below(4)));
    const Poly d = poly_gcd(a * g, b * g);
    // g divides the gcd: divexact must succeed on scaled d.
    EXPECT_GE(d.degree(), g.primitive_part().degree());
    const Poly gp = g.primitive_part();
    // d is divisible by gp (gcd(a,b) may contribute more).
    Poly q, r;
    Poly::pseudo_divmod(d, gp, q, r);
    EXPECT_TRUE(r.is_zero());
  }
}

TEST(Poly, GcdEdgeCases) {
  EXPECT_TRUE(poly_gcd(Poly{}, Poly{}).is_zero());
  EXPECT_EQ(poly_gcd(Poly{0, 1}, Poly{}), (Poly{0, 1}));
  EXPECT_EQ(poly_gcd(Poly{2, 4}, Poly{3}).degree(), 0);
  EXPECT_EQ(poly_gcd(Poly{-2, -4}, Poly{1, 2}), (Poly{1, 2}));
}

TEST(Poly, MaxCoeffBits) {
  EXPECT_EQ((Poly{255, -256}).max_coeff_bits(), 9u);
  EXPECT_EQ(Poly{}.max_coeff_bits(), 0u);
}

TEST(Poly, ToStringFormatting) {
  EXPECT_EQ((Poly{1, -3, 2}).to_string(), "2*x^2 - 3*x + 1");
  EXPECT_EQ((Poly{0, 1}).to_string(), "x");
  EXPECT_EQ((Poly{0, -1}).to_string(), "-x");
  EXPECT_EQ((Poly{-7}).to_string(), "-7");
  EXPECT_EQ((Poly{0, 0, 1}).to_string("y"), "y^2");
  std::ostringstream os;
  os << Poly{1, 1};
  EXPECT_EQ(os.str(), "x + 1");
}

}  // namespace
}  // namespace pr
