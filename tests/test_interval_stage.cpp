// The per-node case analysis (Cases 1 / 2a / 2b / 2c of Section 2.2).
#include "core/interval_stage.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/scaled_point.hpp"
#include "gen/classic_polys.hpp"
#include "poly/bounds.hpp"
#include "poly/sturm.hpp"
#include "support/error.hpp"
#include "support/prng.hpp"

namespace pr {
namespace {

/// Exact mu-approximations of all roots of p via high-precision Sturm
/// bisection -- the ground-truth oracle for the stage.
std::vector<BigInt> oracle_roots(const Poly& p, std::size_t mu) {
  const SturmChain chain(p);
  const std::size_t r = root_bound_pow2(p);
  std::vector<BigInt> out;
  // Bisect cells (a, b] at increasing scale until each holds one root and
  // is below the mu grid; then its ceiling endpoint is the answer.
  struct Item {
    BigInt lo, hi;
    std::size_t s;
  };
  std::vector<Item> stack{{-BigInt::pow2(r), BigInt::pow2(r), 0}};
  while (!stack.empty()) {
    Item it = stack.back();
    stack.pop_back();
    const int cnt = chain.count_half_open(it.lo, it.hi, it.s);
    if (cnt == 0) continue;
    if (cnt == 1 && it.s > mu) {
      // Pin the mu-cell: done when every point of (lo, hi] has the same
      // ceiling approximation.
      const BigInt klo = floor_shift(it.lo, it.s - mu) + BigInt(1);
      const BigInt khi = ceil_shift(it.hi, it.s - mu);
      if (klo == khi) {
        out.push_back(khi);
        continue;
      }
    }
    const BigInt mid = it.lo + it.hi;
    stack.push_back({it.lo + it.lo, mid, it.s + 1});
    stack.push_back({mid, it.hi + it.hi, it.s + 1});
  }
  std::sort(out.begin(), out.end());
  return out;
}

/// Ceiling mu-approximations of the roots of q (the "child" values).
std::vector<BigInt> approx_roots(const Poly& q, std::size_t mu) {
  return oracle_roots(q, mu);
}

TEST(IntervalStage, SolvesNodeGivenDerivativeInterleaving) {
  // p and p' are an interleaving pair (Rolle); feed p' roots as ys.
  Prng rng(40);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<long long> roots;
    std::set<long long> used;
    const int k = 3 + static_cast<int>(rng.below(4));
    while (static_cast<int>(used.size()) < k) used.insert(rng.range(-30, 30));
    roots.assign(used.begin(), used.end());
    const Poly p = poly_from_integer_roots(roots);
    for (std::size_t mu : {2u, 8u, 29u}) {
      const std::vector<BigInt> ys = approx_roots(p.derivative(), mu);
      const BigInt bound = BigInt::pow2(root_bound_pow2(p) + mu);
      IntervalSolverConfig cfg;
      IntervalStats st;
      const auto got = solve_node_intervals(p, ys, mu, bound, cfg, &st);
      ASSERT_EQ(got.size(), roots.size());
      for (std::size_t i = 0; i < roots.size(); ++i) {
        EXPECT_EQ(got[i], BigInt(roots[i]) << mu)
            << "mu=" << mu << " root " << roots[i];
      }
    }
  }
}

TEST(IntervalStage, IrrationalRootsMatchOracle) {
  // p = (x^2-2)(x^2-3)(x^2-7): six irrational roots; interleave with p'.
  const Poly p = Poly{-2, 0, 1} * Poly{-3, 0, 1} * Poly{-7, 0, 1};
  for (std::size_t mu : {3u, 16u, 61u}) {
    const auto ys = approx_roots(p.derivative(), mu);
    const BigInt bound = BigInt::pow2(root_bound_pow2(p) + mu);
    IntervalSolverConfig cfg;
    const auto got = solve_node_intervals(p, ys, mu, bound, cfg, nullptr);
    EXPECT_EQ(got, oracle_roots(p, mu)) << "mu=" << mu;
  }
}

TEST(IntervalStage, Case1TriggersWhenChildrenCoincide) {
  // Roots at 0 and the interleaving value approximations equal: use
  // clustered roots 1/8 apart at mu = 1 so child approximations collapse.
  Prng rng(50);
  const Poly p = clustered_rational_roots(4, 8, 3, rng);
  const std::size_t mu = 1;
  const auto ys = approx_roots(p.derivative(), mu);
  const BigInt bound = BigInt::pow2(root_bound_pow2(p) + mu);
  IntervalSolverConfig cfg;
  IntervalStats st;
  const auto got = solve_node_intervals(p, ys, mu, bound, cfg, &st);
  EXPECT_EQ(got, oracle_roots(p, mu));
}

TEST(IntervalStage, AnalyzePointFields) {
  const Poly p{-4, 0, 1};  // roots +-2
  // At k = 2<<3 (value 2, a root), scale 3.
  const auto info = analyze_interleave_point(p, BigInt(16), 3);
  EXPECT_GT(info.sign_right_at, 0) << "right limit past the root at 2";
  EXPECT_LT(info.sign_at_minus, 0) << "p(15/8) < 0";
  EXPECT_EQ(info.sign_right_at_minus, info.sign_at_minus);
}

TEST(IntervalStage, CountParityHelper) {
  const Poly p = poly_from_integer_roots({-2, 1, 5});  // odd degree
  // #roots <= 0 is 1 (odd): sign_right at 0.
  EXPECT_FALSE(count_leq_is_even(p, sign_right_limit(p, BigInt(0), 0)));
  // #roots <= 6 is 3 (odd).
  EXPECT_FALSE(count_leq_is_even(p, sign_right_limit(p, BigInt(6), 0)));
  // #roots <= -3 is 0 (even).
  EXPECT_TRUE(count_leq_is_even(p, sign_right_limit(p, BigInt(-3), 0)));
  // At an exact root the right limit counts it as passed: #roots <= 1 = 2.
  EXPECT_TRUE(count_leq_is_even(p, sign_right_limit(p, BigInt(1), 0)));
}

TEST(IntervalStage, StageStatsClassifyCases) {
  Prng rng(60);
  const Poly p = clustered_rational_roots(6, 4, 10, rng);
  const std::size_t mu = 24;
  const auto ys = approx_roots(p.derivative(), mu);
  const BigInt bound = BigInt::pow2(root_bound_pow2(p) + mu);
  IntervalSolverConfig cfg;
  IntervalStats st;
  const auto got = solve_node_intervals(p, ys, mu, bound, cfg, &st);
  EXPECT_EQ(st.case1 + st.case2a + st.case2b + st.case2c, got.size());
}

TEST(IntervalStage, Case2bDirect) {
  // p = (10x - 29)(x - 5): roots 2.9 and 5.  Interval 0 with interleave
  // approximations k_lo = -8 (sentinel) and k_hi = 3 (true y in (2, 3])
  // at mu = 0: #roots <= -8 is 0 (= index) and #roots <= 2 is 0 (= index),
  // so Case 2b fires and the answer is k_hi = ceil(2.9) = 3.
  const Poly p = Poly{-29, 10} * Poly{-5, 1};
  const BigInt klo(-8), khi(3);
  const auto info_lo = analyze_interleave_point(p, klo, 0);
  const auto info_hi = analyze_interleave_point(p, khi, 0);
  IntervalSolverConfig cfg;
  IntervalStats st;
  const BigInt got =
      solve_one_interval(p, 0, klo, khi, info_lo, info_hi, 0, cfg, &st);
  EXPECT_EQ(got.to_int64(), 3);
  EXPECT_EQ(st.case2b, 1u);
  EXPECT_EQ(st.case2c, 0u);
}

TEST(IntervalStage, Case2aDirect) {
  // Same polynomial, interval 1 with k_lo = 5 (the exact root 5 sits on
  // the interleave approximation) and k_hi = 8: #roots <= 5 is 2
  // (= index + 1), so Case 2a fires: answer k_lo = 5.
  const Poly p = Poly{-29, 10} * Poly{-5, 1};
  const BigInt klo(5), khi(8);
  const auto info_lo = analyze_interleave_point(p, klo, 0);
  const auto info_hi = analyze_interleave_point(p, khi, 0);
  IntervalSolverConfig cfg;
  IntervalStats st;
  const BigInt got =
      solve_one_interval(p, 1, klo, khi, info_lo, info_hi, 0, cfg, &st);
  EXPECT_EQ(got.to_int64(), 5);
  EXPECT_EQ(st.case2a, 1u);
}

TEST(IntervalStage, Case2cRightEndpointRoot) {
  // Root exactly at the right cell boundary (k_hi - 1)/2^mu: Case 2c's
  // zero-detection shortcut.  p roots: 2 and 7; interval 0 with k_lo = 0,
  // k_hi = 3 at mu = 0: after 2a/2b fail, p(2) == 0 -> answer 2.
  const Poly p = poly_from_integer_roots({2, 7});
  const BigInt klo(0), khi(3);
  const auto info_lo = analyze_interleave_point(p, klo, 0);
  const auto info_hi = analyze_interleave_point(p, khi, 0);
  IntervalSolverConfig cfg;
  IntervalStats st;
  const BigInt got =
      solve_one_interval(p, 0, klo, khi, info_lo, info_hi, 0, cfg, &st);
  EXPECT_EQ(got.to_int64(), 2);
  EXPECT_EQ(st.case2c, 1u);
  EXPECT_EQ(st.total_evals(), 0u) << "exact boundary root needs no solver";
}

TEST(IntervalStage, AllCasesAppearAcrossRandomRuns) {
  // Sanity: over enough random dyadic-rooted inputs at coarse precision,
  // all four cases occur somewhere.
  Prng rng(123321);
  IntervalStats st;
  for (int trial = 0; trial < 30; ++trial) {
    const Poly p = clustered_rational_roots(6, 16, 3, rng);
    const std::size_t mu = 2;
    const auto ys = approx_roots(p.derivative(), mu);
    const BigInt bound = BigInt::pow2(root_bound_pow2(p) + mu);
    IntervalSolverConfig cfg;
    (void)solve_node_intervals(p, ys, mu, bound, cfg, &st);
  }
  EXPECT_GT(st.case1, 0u);
  EXPECT_GT(st.case2a + st.case2b, 0u);
  EXPECT_GT(st.case2c, 0u);
}

TEST(IntervalStage, RejectsWrongInterleaveCount) {
  const Poly p = poly_from_integer_roots({0, 3, 9});
  IntervalSolverConfig cfg;
  EXPECT_THROW(solve_node_intervals(p, {BigInt(1)}, 4,
                                    BigInt::pow2(10), cfg, nullptr),
               InvalidArgument);
}

TEST(IntervalStage, OutputIsNondecreasing) {
  Prng rng(70);
  for (int trial = 0; trial < 6; ++trial) {
    const Poly p = clustered_rational_roots(5, 16, 6, rng);
    const std::size_t mu = 3;  // coarse grid forces shared cells
    const auto ys = approx_roots(p.derivative(), mu);
    const BigInt bound = BigInt::pow2(root_bound_pow2(p) + mu);
    IntervalSolverConfig cfg;
    const auto got = solve_node_intervals(p, ys, mu, bound, cfg, nullptr);
    EXPECT_TRUE(std::is_sorted(got.begin(), got.end()));
    EXPECT_EQ(got, oracle_roots(p, mu));
  }
}

}  // namespace
}  // namespace pr
