#include "core/tree.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <set>

#include "core/tree_builder.hpp"
#include "gen/classic_polys.hpp"
#include "poly/sturm.hpp"
#include "support/error.hpp"

namespace pr {
namespace {

TEST(Tree, SingleNode) {
  Tree t(1);
  EXPECT_EQ(t.nodes().size(), 1u);
  const TreeNode& root = t.node(t.root_index());
  EXPECT_EQ(root.i, 1);
  EXPECT_EQ(root.j, 1);
  EXPECT_TRUE(root.leaf());
  EXPECT_TRUE(root.spine(1));
}

TEST(Tree, PerfectShapeForPowerOfTwoMinusOne) {
  // n = 2^K - 1 gives the paper's perfect binary tree with K levels.
  Tree t(7);
  EXPECT_EQ(t.depth(), 3);
  int leaves = 0, empties = 0;
  for (const auto& nd : t.nodes()) {
    leaves += nd.leaf();
    empties += nd.empty();
  }
  EXPECT_EQ(leaves, 4);
  EXPECT_EQ(empties, 0);
  // Level l has 2^l nodes of length 2^(K-l) - 1.
  std::map<int, std::vector<int>> lengths_by_level;
  for (const auto& nd : t.nodes()) {
    lengths_by_level[nd.level].push_back(nd.length());
  }
  EXPECT_EQ(lengths_by_level[0], (std::vector<int>{7}));
  EXPECT_EQ(lengths_by_level[1].size(), 2u);
  for (int len : lengths_by_level[1]) EXPECT_EQ(len, 3);
  EXPECT_EQ(lengths_by_level[2].size(), 4u);
  for (int len : lengths_by_level[2]) EXPECT_EQ(len, 1);
}

TEST(Tree, SplitConsumesOneIndex) {
  for (int n : {2, 3, 5, 8, 13, 21}) {
    Tree t(n);
    for (const auto& nd : t.nodes()) {
      if (nd.empty() || nd.leaf()) continue;
      const TreeNode& l = t.node(nd.left);
      const TreeNode& r = t.node(nd.right);
      EXPECT_EQ(l.i, nd.i);
      EXPECT_EQ(l.j, nd.split - 1);
      EXPECT_EQ(r.i, nd.split + 1);
      EXPECT_EQ(r.j, nd.j);
      EXPECT_EQ(l.length() + r.length(), nd.length() - 1);
      // Balance: children lengths differ by at most 1.
      EXPECT_LE(std::abs(l.length() - r.length()), 1);
    }
  }
}

TEST(Tree, EveryIndexAppearsExactlyOnceAsLeafOrSplit) {
  for (int n : {1, 2, 6, 15, 20}) {
    Tree t(n);
    std::set<int> used;
    for (const auto& nd : t.nodes()) {
      if (nd.empty()) continue;
      if (nd.leaf()) {
        EXPECT_TRUE(used.insert(nd.i).second);
      } else {
        EXPECT_TRUE(used.insert(nd.split).second);
      }
    }
    EXPECT_EQ(static_cast<int>(used.size()), n);
    EXPECT_EQ(*used.begin(), 1);
    EXPECT_EQ(*used.rbegin(), n);
  }
}

TEST(Tree, PostorderListsChildrenFirst) {
  Tree t(11);
  std::vector<int> position(t.nodes().size());
  const auto& order = t.postorder();
  ASSERT_EQ(order.size(), t.nodes().size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    position[static_cast<std::size_t>(order[i])] = static_cast<int>(i);
  }
  for (std::size_t idx = 0; idx < t.nodes().size(); ++idx) {
    const auto& nd = t.nodes()[idx];
    if (nd.left >= 0) {
      EXPECT_LT(position[static_cast<std::size_t>(nd.left)],
                position[idx]);
      EXPECT_LT(position[static_cast<std::size_t>(nd.right)],
                position[idx]);
    }
  }
}

TEST(Tree, SpineNodesAreRightmost) {
  Tree t(12);
  for (const auto& nd : t.nodes()) {
    if (nd.spine(12)) {
      // A spine node's right child (if any) is also spine.
      if (nd.right >= 0) {
        EXPECT_TRUE(t.node(nd.right).spine(12) || t.node(nd.right).empty());
      }
    }
  }
}

TEST(Tree, RejectsNonPositiveDegree) {
  EXPECT_THROW(Tree(0), InvalidArgument);
  EXPECT_THROW(Tree(-3), InvalidArgument);
}

TEST(TreeBuilder, PolynomialsMatchTheorem1Degrees) {
  const Poly p = poly_from_integer_roots({-11, -6, -2, 1, 3, 7, 12, 18});
  const auto rs = compute_remainder_sequence(p);
  Tree tree(p.degree());
  for (int idx : tree.postorder()) compute_node_poly(tree, idx, rs);
  for (const auto& nd : tree.nodes()) {
    if (nd.empty()) {
      EXPECT_EQ(nd.poly, (Poly{1}));
      continue;
    }
    EXPECT_EQ(nd.poly.degree(), nd.length());
    EXPECT_EQ(SturmChain(nd.poly).distinct_real_roots(), nd.length());
  }
  // Root carries F_0 itself.
  EXPECT_EQ(tree.node(tree.root_index()).poly, p);
}

TEST(TreeBuilder, SpinePolynomialsAreRemainderSequence) {
  const Poly p = poly_from_integer_roots({-4, -1, 2, 6, 9, 14});
  const auto rs = compute_remainder_sequence(p);
  Tree tree(p.degree());
  for (int idx : tree.postorder()) compute_node_poly(tree, idx, rs);
  for (const auto& nd : tree.nodes()) {
    if (!nd.empty() && nd.j == p.degree()) {
      EXPECT_EQ(nd.poly, rs.F[static_cast<std::size_t>(nd.i - 1)]);
      EXPECT_FALSE(nd.has_t);
    }
  }
}

TEST(TreeBuilder, ChildRootCountsSumToParentMinusOne) {
  const Poly p = poly_from_integer_roots({-11, -6, -2, 1, 3, 7, 12, 18, 25});
  const auto rs = compute_remainder_sequence(p);
  Tree tree(p.degree());
  for (int idx : tree.postorder()) compute_node_poly(tree, idx, rs);
  for (const auto& nd : tree.nodes()) {
    if (nd.empty() || nd.leaf()) continue;
    const int dl = tree.node(nd.left).empty()
                       ? 0
                       : tree.node(nd.left).poly.degree();
    const int dr = tree.node(nd.right).empty()
                       ? 0
                       : tree.node(nd.right).poly.degree();
    EXPECT_EQ(dl + dr, nd.poly.degree() - 1);
  }
}

}  // namespace
}  // namespace pr
