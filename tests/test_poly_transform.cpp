// Taylor shift, reversal, and string parsing.
#include <gtest/gtest.h>

#include "gen/classic_polys.hpp"
#include "poly/poly.hpp"
#include "support/error.hpp"
#include "support/prng.hpp"

namespace pr {
namespace {

TEST(TaylorShift, KnownCases) {
  // (x+1)^2 = x^2 + 2x + 1.
  EXPECT_EQ((Poly{0, 0, 1}).taylor_shift(BigInt(1)), (Poly{1, 2, 1}));
  // p(x) = x shifted by c: x + c.
  EXPECT_EQ(Poly::x().taylor_shift(BigInt(-5)), (Poly{-5, 1}));
  // Constants and zero are fixed points.
  EXPECT_EQ((Poly{7}).taylor_shift(BigInt(3)), (Poly{7}));
  EXPECT_TRUE(Poly{}.taylor_shift(BigInt(3)).is_zero());
  EXPECT_EQ((Poly{1, 2, 3}).taylor_shift(BigInt(0)), (Poly{1, 2, 3}));
}

TEST(TaylorShift, AgreesWithPointEvaluation) {
  Prng rng(64);
  for (int iter = 0; iter < 50; ++iter) {
    std::vector<BigInt> c;
    const int deg = 1 + static_cast<int>(rng.below(7));
    for (int i = 0; i <= deg; ++i) c.emplace_back(rng.range(-30, 30));
    const Poly p(std::move(c));
    const BigInt shift(rng.range(-10, 10));
    const Poly q = p.taylor_shift(shift);
    for (long long x = -4; x <= 4; ++x) {
      EXPECT_EQ(q.eval(BigInt(x)), p.eval(BigInt(x) + shift));
    }
  }
}

TEST(TaylorShift, ShiftsRoots) {
  // wilkinson(5) has roots 1..5; shifting by 2 moves them to -1..3.
  const Poly w = wilkinson(5).taylor_shift(BigInt(2));
  for (long long r = -1; r <= 3; ++r) {
    EXPECT_EQ(w.eval(BigInt(r)).signum(), 0);
  }
}

TEST(TaylorShift, Composes) {
  Prng rng(65);
  const Poly p = wilkinson(6);
  EXPECT_EQ(p.taylor_shift(BigInt(3)).taylor_shift(BigInt(-3)), p);
}

TEST(Reversed, Basics) {
  EXPECT_EQ((Poly{1, 2, 3}).reversed(), (Poly{3, 2, 1}));
  EXPECT_TRUE(Poly{}.reversed().is_zero());
  // Zero constant term: degree drops under reversal.
  EXPECT_EQ((Poly{0, 1, 2}).reversed(), (Poly{2, 1}));
}

/// Sign of 3^deg * r(1/3) (exact; 1/3 is not dyadic).
int sign_at_one_third(const Poly& r) {
  BigInt acc;
  const int d = r.degree();
  for (int i = 0; i <= d; ++i) {
    acc += r.coeff(static_cast<std::size_t>(i)) *
           pow(BigInt(3), static_cast<unsigned>(d - i));
  }
  return acc.signum();
}

TEST(Reversed, MapsRootsToReciprocals) {
  // roots 2 and 3 -> reversed has roots 1/2 and 1/3.
  const Poly p = poly_from_integer_roots({2, 3});
  const Poly r = p.reversed();
  EXPECT_TRUE(r.eval_scaled(BigInt(1), 1).is_zero());  // r(1/2) == 0
  EXPECT_EQ(sign_at_one_third(r), 0);
}

TEST(Compose, KnownCases) {
  // (x^2)(x+1) composed: p = x^2, q = x+1 -> (x+1)^2.
  EXPECT_EQ((Poly{0, 0, 1}).compose(Poly{1, 1}), (Poly{1, 2, 1}));
  // p(q) with p linear: a*q + b.
  EXPECT_EQ((Poly{3, 2}).compose(Poly{-1, 0, 5}), (Poly{1, 0, 10}));
  // Composition with constants.
  EXPECT_EQ((Poly{1, 1, 1}).compose(Poly{2}), (Poly{7}));
  EXPECT_TRUE(Poly{}.compose(Poly{1, 1}).is_zero());
  EXPECT_EQ((Poly{5}).compose(Poly{0, 9}), (Poly{5}));
}

TEST(Compose, AgreesWithPointEvaluation) {
  Prng rng(91);
  for (int iter = 0; iter < 40; ++iter) {
    std::vector<BigInt> pc, qc;
    for (int i = 0; i <= 3; ++i) pc.emplace_back(rng.range(-9, 9));
    for (int i = 0; i <= 2; ++i) qc.emplace_back(rng.range(-9, 9));
    const Poly p(std::move(pc)), q(std::move(qc));
    const Poly comp = p.compose(q);
    for (long long x = -3; x <= 3; ++x) {
      EXPECT_EQ(comp.eval(BigInt(x)), p.eval(q.eval(BigInt(x))));
    }
  }
}

TEST(Compose, TaylorShiftIsCompositionWithXPlusC) {
  const Poly p = wilkinson(7);
  EXPECT_EQ(p.taylor_shift(BigInt(4)), p.compose(Poly{4, 1}));
}

TEST(Parse, RoundTripsToString) {
  const char* cases[] = {
      "x^3 - 2*x + 1", "3*x^2 + 5", "-x", "7", "x", "-x^4 + x^2 - 1",
  };
  for (const char* s : cases) {
    const Poly p = Poly::parse(s);
    EXPECT_EQ(Poly::parse(p.to_string()), p) << s;
  }
}

TEST(Parse, AcceptsCompactForms) {
  EXPECT_EQ(Poly::parse("3x^2+5"), (Poly{5, 0, 3}));
  EXPECT_EQ(Poly::parse("  - x ^ 2 "), (Poly{0, 0, -1}));
  EXPECT_EQ(Poly::parse("2*x"), (Poly{0, 2}));
  EXPECT_EQ(Poly::parse("x+x"), (Poly{0, 2}));
  EXPECT_EQ(Poly::parse("x - x"), Poly{});
  EXPECT_EQ(Poly::parse("y^2 - 1", 'y'), (Poly{-1, 0, 1}));
  EXPECT_EQ(Poly::parse("123456789012345678901234567890"),
            Poly::constant(BigInt::from_decimal(
                "123456789012345678901234567890")));
}

TEST(Parse, RejectsMalformedInput) {
  EXPECT_THROW(Poly::parse(""), InvalidArgument);
  EXPECT_THROW(Poly::parse("x +"), InvalidArgument);
  EXPECT_THROW(Poly::parse("* x"), InvalidArgument);
  EXPECT_THROW(Poly::parse("x y"), InvalidArgument);
  EXPECT_THROW(Poly::parse("x^"), InvalidArgument);
  EXPECT_THROW(Poly::parse("2 2"), InvalidArgument);
  EXPECT_THROW(Poly::parse("x^-2"), InvalidArgument);
}

TEST(Parse, RejectsDanglingStar) {
  // Regression: a '*' with no variable after it used to be silently
  // dropped, so "3*" parsed as the constant 3 and "3*+x" as x + 3.
  EXPECT_THROW(Poly::parse("3*"), InvalidArgument);
  EXPECT_THROW(Poly::parse("3*+x"), InvalidArgument);
  EXPECT_THROW(Poly::parse("x^2 + 3* - 1"), InvalidArgument);
  EXPECT_THROW(Poly::parse("3 * 4"), InvalidArgument);
}

TEST(Parse, DiagnosticsCarryPositionAndContext) {
  // Service error paths surface these messages verbatim, so they must
  // name the position and what was expected.
  try {
    Poly::parse("x^2 + 3* - 1");
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("position"), std::string::npos) << msg;
    EXPECT_NE(msg.find("'x' after '*'"), std::string::npos) << msg;
  }
  try {
    Poly::parse("x^-2");
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("position"), std::string::npos);
  }
}

TEST(Parse, RoundTripsRandomPolynomials) {
  Prng rng(321);
  for (int iter = 0; iter < 60; ++iter) {
    std::vector<BigInt> c;
    const int deg = static_cast<int>(rng.below(8));
    for (int i = 0; i <= deg; ++i) c.emplace_back(rng.range(-1000, 1000));
    const Poly p(std::move(c));
    if (p.is_zero()) continue;  // "0" is not produced by to_string terms
    EXPECT_EQ(Poly::parse(p.to_string()), p) << p.to_string();
  }
}

TEST(Parse, WorksWithFinder) {
  const Poly p = Poly::parse("x^2 - 2");
  EXPECT_EQ(p, (Poly{-2, 0, 1}));
}

}  // namespace
}  // namespace pr
