// The task-parallel driver (Section 3): determinism across thread counts
// and grains, DAG structure, and trace recording.
#include "core/parallel_driver.hpp"

#include <gtest/gtest.h>

#include <map>

#include "gen/classic_polys.hpp"
#include "gen/matrix_polys.hpp"
#include "sim/des.hpp"
#include "support/error.hpp"
#include "support/prng.hpp"

namespace pr {
namespace {

RootFinderConfig base_config(std::size_t mu) {
  RootFinderConfig cfg;
  cfg.mu_bits = mu;
  return cfg;
}

class GrainModes : public ::testing::TestWithParam<RemainderGrain> {};

TEST_P(GrainModes, MatchesSequentialBitForBit) {
  // Seed chosen so every generated charpoly is squarefree (small 0/1
  // matrices frequently have repeated eigenvalues, which would divert the
  // parallel driver to its sequential fallback).
  Prng rng(99);
  for (int trial = 0; trial < 3; ++trial) {
    const auto input = paper_input(6 + 4 * trial, rng);
    const RootFinderConfig cfg = base_config(35);
    const auto seq = find_real_roots(input.poly, cfg);
    ParallelConfig pc;
    pc.grain = GetParam();
    for (int threads : {1, 2, 4}) {
      pc.num_threads = threads;
      const auto par = find_real_roots_parallel(input.poly, cfg, pc);
      EXPECT_FALSE(par.used_sequential_fallback);
      EXPECT_EQ(par.report.roots, seq.roots)
          << "threads=" << threads << " n=" << input.poly.degree();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllGrains, GrainModes,
    ::testing::Values(RemainderGrain::kPerIteration,
                      RemainderGrain::kPerCoefficient,
                      RemainderGrain::kPerOperation),
    [](const auto& param_info) {
      switch (param_info.param) {
        case RemainderGrain::kPerIteration: return "PerIteration";
        case RemainderGrain::kPerCoefficient: return "PerCoefficient";
        default: return "PerOperation";
      }
    });

TEST(ParallelDriver, SequentialRemainderOption) {
  Prng rng(9);
  const auto input = paper_input(10, rng);
  const RootFinderConfig cfg = base_config(24);
  ParallelConfig pc;
  pc.sequential_remainder = true;
  pc.num_threads = 2;
  const auto par = find_real_roots_parallel(input.poly, cfg, pc);
  const auto seq = find_real_roots(input.poly, cfg);
  EXPECT_EQ(par.report.roots, seq.roots);
}

TEST(ParallelDriver, TraceHasPaperTaskKinds) {
  Prng rng(77);
  const auto input = paper_input(9, rng);
  const auto run =
      find_real_roots_parallel(input.poly, base_config(20), ParallelConfig{});
  std::map<TaskKind, int> kinds;
  for (const auto& t : run.trace.tasks) kinds[t.kind]++;
  EXPECT_GT(kinds[TaskKind::kQuotient], 0);
  EXPECT_GT(kinds[TaskKind::kCoeff], 0);
  EXPECT_GT(kinds[TaskKind::kMatEntry1], 0);
  EXPECT_GT(kinds[TaskKind::kMatEntry2], 0);
  EXPECT_GT(kinds[TaskKind::kSort], 0);
  EXPECT_GT(kinds[TaskKind::kPreInterval], 0);
  EXPECT_GT(kinds[TaskKind::kInterval], 0);
  EXPECT_GT(kinds[TaskKind::kLinRoot], 0);
  // Interval tasks: one per root per internal node.
  EXPECT_GE(kinds[TaskKind::kInterval], input.poly.degree());
}

TEST(ParallelDriver, TraceCostsCoverRealWork) {
  Prng rng(31);
  const auto input = paper_input(12, rng);
  const auto run =
      find_real_roots_parallel(input.poly, base_config(40), ParallelConfig{});
  EXPECT_GT(run.trace.total_cost(), 1000u);
  EXPECT_LT(run.trace.critical_path(), run.trace.total_cost());
}

TEST(ParallelDriver, TraceIsDeterministicAcrossThreadCounts) {
  Prng rng(55);
  const auto input = paper_input(8, rng);
  const RootFinderConfig cfg = base_config(30);
  ParallelConfig p1, p4;
  p1.num_threads = 1;
  p4.num_threads = 4;
  const auto run1 = find_real_roots_parallel(input.poly, cfg, p1);
  const auto run4 = find_real_roots_parallel(input.poly, cfg, p4);
  ASSERT_EQ(run1.trace.size(), run4.trace.size());
  for (std::size_t i = 0; i < run1.trace.size(); ++i) {
    EXPECT_EQ(run1.trace.tasks[i].cost, run4.trace.tasks[i].cost)
        << "task " << i << " cost depends on thread count";
  }
}

TEST(ParallelDriver, SimulatedSpeedupGrowsWithProcessors) {
  Prng rng(41);
  const auto input = paper_input(20, rng);
  const auto run =
      find_real_roots_parallel(input.poly, base_config(60), ParallelConfig{});
  const auto sp = simulate_speedups(run.trace, {1, 2, 4, 8});
  EXPECT_NEAR(sp[0], 1.0, 1e-9);
  EXPECT_GT(sp[1], 1.5);
  EXPECT_GT(sp[2], sp[1]);
  EXPECT_GE(sp[3], sp[2] * 0.99);
}

TEST(ParallelDriver, RepeatedRootsDelegateToSequential) {
  const Poly p = poly_from_integer_roots({2, 2, 5});
  const auto run =
      find_real_roots_parallel(p, base_config(12), ParallelConfig{});
  EXPECT_TRUE(run.used_sequential_fallback);
  ASSERT_EQ(run.report.roots.size(), 2u);
  EXPECT_EQ(run.report.multiplicities, (std::vector<unsigned>{2, 1}));
}

TEST(ParallelDriver, ComplexRootsDelegateToSequential) {
  const Poly p{1, 0, 0, 0, 1};  // x^4 + 1
  const auto run =
      find_real_roots_parallel(p, base_config(12), ParallelConfig{});
  EXPECT_TRUE(run.used_sequential_fallback);
  EXPECT_TRUE(run.report.roots.empty());
}

TEST(ParallelDriver, LinearInputDelegates) {
  const auto run =
      find_real_roots_parallel(Poly{-3, 2}, base_config(8), ParallelConfig{});
  EXPECT_TRUE(run.used_sequential_fallback);
  ASSERT_EQ(run.report.roots.size(), 1u);
}

TEST(ParallelDriver, WilkinsonParallel) {
  const RootFinderConfig cfg = base_config(16);
  ParallelConfig pc;
  pc.num_threads = 3;
  const auto run = find_real_roots_parallel(wilkinson(14), cfg, pc);
  ASSERT_EQ(run.report.roots.size(), 14u);
  for (int i = 0; i < 14; ++i) {
    EXPECT_EQ(run.report.roots[static_cast<std::size_t>(i)],
              BigInt(static_cast<long long>(i + 1)) << 16);
  }
}

TEST(ParallelDriver, WorkStealingPolicyMatchesCentralQueue) {
  Prng rng(99);
  const auto input = paper_input(10, rng);
  const RootFinderConfig cfg = base_config(40);
  ParallelConfig central, stealing;
  central.num_threads = 4;
  stealing.num_threads = 4;
  stealing.pool_policy = PoolPolicy::kWorkStealing;
  const auto a = find_real_roots_parallel(input.poly, cfg, central);
  const auto b = find_real_roots_parallel(input.poly, cfg, stealing);
  EXPECT_FALSE(a.used_sequential_fallback);
  EXPECT_FALSE(b.used_sequential_fallback);
  EXPECT_EQ(a.report.roots, b.report.roots);
  // Costs are deterministic regardless of the queueing policy.
  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (std::size_t i = 0; i < a.trace.size(); ++i) {
    EXPECT_EQ(a.trace.tasks[i].cost, b.trace.tasks[i].cost);
  }
}

TEST(ParallelDriver, InherentParallelismIsSubstantial) {
  Prng rng(99);
  const auto input = paper_input(18, rng);
  const auto run =
      find_real_roots_parallel(input.poly, base_config(53), ParallelConfig{});
  const auto prof = parallelism_profile(run.trace);
  EXPECT_GT(prof.average, 3.0) << "the DAG should expose real parallelism";
  EXPECT_GE(prof.peak, 8u);
  EXPECT_GT(prof.at_least[1], 0.3) << ">= 2 tasks most of the time";
}

// The ISSUE's determinism matrix: RootReports must be bit-identical
// across every {policy} x {thread count} x {grain chunk} combination,
// because each task is a pure function of its dependencies' outputs and
// chunking only changes how units are packed into scheduled tasks.
TEST(ParallelDriver, DeterministicAcrossPolicyThreadsAndChunks) {
  struct Workload {
    const char* name;
    Poly poly;
  };
  Prng rng(99);
  const std::vector<Workload> workloads = {
      {"wilkinson", wilkinson(12)},
      {"berkowitz", paper_input(10, rng).poly},
  };
  const RootFinderConfig cfg = base_config(24);
  for (const auto& w : workloads) {
    const auto ref = find_real_roots(w.poly, cfg);
    for (RemainderGrain grain :
         {RemainderGrain::kPerCoefficient, RemainderGrain::kPerOperation}) {
      for (PoolPolicy policy :
           {PoolPolicy::kCentralQueue, PoolPolicy::kWorkStealing}) {
        for (int threads : {1, 2, 8}) {
          for (int chunk : {1, 4}) {
            ParallelConfig pc;
            pc.grain = grain;
            pc.pool_policy = policy;
            pc.num_threads = threads;
            pc.grain_chunk = chunk;
            const auto run = find_real_roots_parallel(w.poly, cfg, pc);
            EXPECT_FALSE(run.used_sequential_fallback);
            EXPECT_EQ(run.report.roots, ref.roots)
                << w.name << " policy="
                << (policy == PoolPolicy::kCentralQueue ? "central" : "steal")
                << " threads=" << threads << " chunk=" << chunk;
            EXPECT_EQ(run.report.multiplicities, ref.multiplicities) << w.name;
          }
        }
      }
    }
  }
}

TEST(ParallelDriver, GrainChunkShrinksTraceKeepsRoots) {
  Prng rng(88);
  const auto input = paper_input(12, rng);
  const RootFinderConfig cfg = base_config(16);
  ParallelConfig fine, chunked;
  fine.grain = RemainderGrain::kPerOperation;
  chunked.grain = RemainderGrain::kPerOperation;
  chunked.grain_chunk = 4;
  const auto runf = find_real_roots_parallel(input.poly, cfg, fine);
  const auto runc = find_real_roots_parallel(input.poly, cfg, chunked);
  EXPECT_EQ(runf.report.roots, runc.report.roots);
  // Chunking fuses micro-tasks, so the DAG must get much smaller (the
  // tree-stage tasks are unaffected, so less than the full 4x) while
  // total recorded work stays comparable (same arithmetic, fewer tasks).
  EXPECT_LT(runc.trace.size() * 3, runf.trace.size() * 2);
  EXPECT_GT(runc.trace.total_cost() * 2, runf.trace.total_cost());
}

TEST(ParallelDriver, RejectsBadGrainChunk) {
  ParallelConfig pc;
  pc.grain_chunk = 0;
  EXPECT_THROW(
      find_real_roots_parallel(wilkinson(6), base_config(12), pc),
      InvalidArgument);
}

TEST(ParallelDriver, PoolStatsExposeTimelineAndCounters) {
  Prng rng(7);
  const auto input = paper_input(10, rng);
  ParallelConfig pc;
  pc.num_threads = 2;
  const auto run = find_real_roots_parallel(input.poly, base_config(30), pc);
  EXPECT_FALSE(run.used_sequential_fallback);
  EXPECT_EQ(run.pool.tasks_run, run.trace.size());
  EXPECT_EQ(run.pool.timeline.entries.size(), run.trace.size());
  ASSERT_EQ(run.pool.workers.size(), 2u);
  std::size_t worker_tasks = 0;
  for (const auto& w : run.pool.workers) worker_tasks += w.tasks;
  EXPECT_EQ(worker_tasks, run.pool.tasks_run);
  EXPECT_GT(run.pool.wall_seconds, 0.0);
  EXPECT_GE(run.pool.setup_seconds, 0.0);
}

TEST(ParallelDriver, PerOperationGrainHasMoreTasks) {
  Prng rng(88);
  const auto input = paper_input(12, rng);
  const RootFinderConfig cfg = base_config(16);
  ParallelConfig coarse, fine;
  coarse.grain = RemainderGrain::kPerIteration;
  fine.grain = RemainderGrain::kPerOperation;
  const auto runc = find_real_roots_parallel(input.poly, cfg, coarse);
  const auto runf = find_real_roots_parallel(input.poly, cfg, fine);
  EXPECT_GT(runf.trace.size(), runc.trace.size() + 100);
  EXPECT_EQ(runc.report.roots, runf.report.roots);
}

}  // namespace
}  // namespace pr
