#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <sstream>
#include <thread>

#include "bigint/bigint.hpp"
#include "instr/sched_stats.hpp"
#include "sched/task_graph.hpp"
#include "sched/task_pool.hpp"
#include "sched/trace.hpp"
#include "support/error.hpp"

namespace pr {
namespace {

TEST(TaskGraph, AddAndEdges) {
  TaskGraph g;
  const TaskId a = g.add(TaskKind::kGeneric, 1, {});
  const TaskId b = g.add(TaskKind::kGeneric, 2, {});
  g.add_edge(a, b);
  EXPECT_EQ(g.size(), 2u);
  EXPECT_EQ(g.task(a).dependents, std::vector<TaskId>{b});
  EXPECT_EQ(g.task(b).num_deps, 1);
  EXPECT_EQ(g.initial_tasks(), std::vector<TaskId>{a});
  EXPECT_NO_THROW(g.validate());
}

TEST(TaskGraph, EdgeValidation) {
  TaskGraph g;
  const TaskId a = g.add(TaskKind::kGeneric, 0, {});
  EXPECT_THROW(g.add_edge(a, a), InvalidArgument);
  EXPECT_THROW(g.add_edge(a, 99), InvalidArgument);
  EXPECT_THROW(g.add_edge(-1, a), InvalidArgument);
}

TEST(TaskGraph, CycleDetection) {
  TaskGraph g;
  const TaskId a = g.add(TaskKind::kGeneric, 0, {});
  const TaskId b = g.add(TaskKind::kGeneric, 1, {});
  g.add_edge(a, b);
  g.add_edge(b, a);
  EXPECT_THROW(g.validate(), InternalError);
}

TEST(TaskGraph, CriticalPathAndTotalCost) {
  // Diamond: a -> {b, c} -> d with costs 1, 10, 2, 5.
  TaskGraph g;
  const TaskId a = g.add(TaskKind::kGeneric, 0, {});
  const TaskId b = g.add(TaskKind::kGeneric, 1, {});
  const TaskId c = g.add(TaskKind::kGeneric, 2, {});
  const TaskId d = g.add(TaskKind::kGeneric, 3, {});
  g.add_edge(a, b);
  g.add_edge(a, c);
  g.add_edge(b, d);
  g.add_edge(c, d);
  g.task(a).cost = 1;
  g.task(b).cost = 10;
  g.task(c).cost = 2;
  g.task(d).cost = 5;
  EXPECT_EQ(g.total_cost(), 18u);
  EXPECT_EQ(g.critical_path_cost(), 16u);  // a + b + d
  EXPECT_EQ(g.critical_path_cost(1), 19u);
}

TEST(TaskPool, RunsEveryTaskOnce) {
  TaskGraph g;
  std::atomic<int> runs{0};
  std::vector<TaskId> ids;
  for (int i = 0; i < 50; ++i) {
    ids.push_back(g.add(TaskKind::kGeneric, i, [&runs] { ++runs; }));
  }
  // Chain dependencies 0 -> 1 -> ... -> 49 plus cross edges.
  for (int i = 1; i < 50; ++i) g.add_edge(ids[i - 1], ids[i]);
  for (int i = 0; i + 10 < 50; i += 7) g.add_edge(ids[i], ids[i + 10]);
  TaskPool pool(1);
  const auto stats = pool.run(g);
  EXPECT_EQ(runs.load(), 50);
  EXPECT_EQ(stats.tasks_run, 50u);
}

TEST(TaskPool, RespectsDependencyOrder) {
  TaskGraph g;
  std::vector<int> order;
  std::mutex m;
  const TaskId a = g.add(TaskKind::kGeneric, 0, [&] {
    std::lock_guard<std::mutex> lock(m);
    order.push_back(0);
  });
  const TaskId b = g.add(TaskKind::kGeneric, 1, [&] {
    std::lock_guard<std::mutex> lock(m);
    order.push_back(1);
  });
  const TaskId c = g.add(TaskKind::kGeneric, 2, [&] {
    std::lock_guard<std::mutex> lock(m);
    order.push_back(2);
  });
  g.add_edge(a, b);
  g.add_edge(b, c);
  TaskPool pool(4);
  pool.run(g);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(TaskPool, MultiThreadedStress) {
  // Wide fan-out/fan-in graph run with several threads; verify the sum.
  TaskGraph g;
  constexpr int kWidth = 200;
  std::vector<int> results(kWidth, 0);
  const TaskId src = g.add(TaskKind::kGeneric, -1, {});
  const TaskId sink = g.add(TaskKind::kGeneric, -2, {});
  for (int i = 0; i < kWidth; ++i) {
    const TaskId t = g.add(TaskKind::kGeneric, i, [&results, i] {
      results[static_cast<std::size_t>(i)] = i * i;
    });
    g.add_edge(src, t);
    g.add_edge(t, sink);
  }
  TaskPool pool(8);
  pool.run(g);
  long long sum = 0;
  for (int v : results) sum += v;
  EXPECT_EQ(sum, 200LL * 199 * 399 / 6);
}

TEST(TaskPool, RecordsBigIntCosts) {
  TaskGraph g;
  const TaskId cheap = g.add(TaskKind::kGeneric, 0, [] {
    (void)(BigInt(3) * BigInt(5));
  });
  const TaskId costly = g.add(TaskKind::kGeneric, 1, [] {
    (void)(BigInt::pow2(5000) * BigInt::pow2(5000));
  });
  TaskPool pool(1);
  pool.run(g);
  EXPECT_GT(g.task(costly).cost, g.task(cheap).cost);
  EXPECT_GT(g.task(costly).cost, 5000u * 5000u);
}

TEST(TaskPool, PropagatesExceptions) {
  TaskGraph g;
  g.add(TaskKind::kGeneric, 0, [] { throw InvalidArgument("boom"); });
  g.add(TaskKind::kGeneric, 1, {});
  TaskPool pool(2);
  EXPECT_THROW(pool.run(g), InvalidArgument);
}

TEST(TaskPool, RejectsZeroThreads) {
  EXPECT_THROW(TaskPool(0), InvalidArgument);
}

TEST(TaskPool, EmptyGraphReturnsImmediately) {
  TaskGraph g;
  TaskPool pool(4);
  const auto stats = pool.run(g);
  EXPECT_EQ(stats.tasks_run, 0u);
  EXPECT_TRUE(stats.timeline.entries.empty());
}

// Regression for the shutdown underflow: the old pool zeroed `remaining`
// (a size_t) from the error path while other tasks were still in flight;
// their completions then wrapped the counter past zero and shutdown relied
// on the error flag alone.  The rewrite only ever decrements per completed
// task, so a throwing task racing long-running tasks must shut down
// cleanly under both policies, every time.
class PoolPolicies : public ::testing::TestWithParam<PoolPolicy> {};

TEST_P(PoolPolicies, ThrowingTaskRacingLongTasksShutsDownCleanly) {
  for (int round = 0; round < 8; ++round) {
    TaskGraph g;
    // Several slow tasks that are likely mid-flight when the bomb goes off.
    for (int i = 0; i < 6; ++i) {
      g.add(TaskKind::kGeneric, i, [] {
        (void)(BigInt::pow2(20000) * BigInt::pow2(20000));
      });
    }
    g.add(TaskKind::kGeneric, 99, [] {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
      throw InvalidArgument("boom");
    });
    // More work queued behind the slow tasks so shutdown must abandon a
    // non-empty queue.
    std::atomic<int> late{0};
    for (int i = 0; i < 32; ++i) {
      const TaskId a = g.add(TaskKind::kGeneric, i, [&late] { ++late; });
      g.add_edge(static_cast<TaskId>(i % 6), a);
    }
    TaskPool pool(4, GetParam());
    EXPECT_THROW(pool.run(g), InvalidArgument) << "round " << round;
  }
}

TEST_P(PoolPolicies, FirstOfConcurrentExceptionsWins) {
  TaskGraph g;
  for (int i = 0; i < 4; ++i) {
    g.add(TaskKind::kGeneric, i, [] { throw InvalidArgument("boom"); });
  }
  TaskPool pool(4, GetParam());
  EXPECT_THROW(pool.run(g), InvalidArgument);
}

INSTANTIATE_TEST_SUITE_P(BothPolicies, PoolPolicies,
                         ::testing::Values(PoolPolicy::kCentralQueue,
                                           PoolPolicy::kWorkStealing),
                         [](const auto& param_info) {
                           return param_info.param == PoolPolicy::kCentralQueue
                                      ? std::string("Central")
                                      : std::string("Stealing");
                         });

// Lost-wakeup stress: waves of tiny tasks with full fan-in between waves,
// run with more threads than this host has cores.  Every wave boundary
// forces most workers through the park/wake path; under the old
// work-stealing pool the queue was checked outside the idle mutex and a
// concurrent push's notify could be missed, leaving the 1 ms poll as the
// only (load-bearing) recovery mechanism.  The new protocol must drive
// thousands of boundary crossings purely by wakeups -- promptly and
// without losing a single task.
TEST(TaskPoolStress, TinyTaskWavesWithMoreThreadsThanCores) {
  constexpr int kThreads = 8;
  constexpr int kWaves = 150;
  TaskGraph g;
  std::atomic<int> runs{0};
  std::vector<TaskId> prev;
  for (int w = 0; w < kWaves; ++w) {
    std::vector<TaskId> wave;
    for (int i = 0; i < kThreads; ++i) {
      wave.push_back(g.add(TaskKind::kGeneric, w, [&runs] { ++runs; }));
    }
    for (TaskId p : prev) {
      for (TaskId t : wave) g.add_edge(p, t);
    }
    prev = std::move(wave);
  }
  TaskPool pool(kThreads, PoolPolicy::kWorkStealing);
  const auto stats = pool.run(g);
  EXPECT_EQ(runs.load(), kWaves * kThreads);
  EXPECT_EQ(stats.tasks_run, static_cast<std::size_t>(kWaves * kThreads));
  // With the old 1 ms poll as the recovery path, missed wakeups stack up
  // to a wall time on the order of kWaves milliseconds; the idle/wake
  // protocol finishes far below that even on a loaded single-core host.
  EXPECT_LT(stats.wall_seconds, 0.001 * kWaves)
      << "wave boundaries appear to be paced by timed polling";
}

TEST(TaskPoolStress, CentralQueueTinyTaskChains) {
  // The same pressure on the central queue's cv protocol: long dependency
  // chains of free tasks force constant sleep/wake churn.
  constexpr int kThreads = 8;
  TaskGraph g;
  std::atomic<int> runs{0};
  TaskId prev = g.add(TaskKind::kGeneric, 0, [&runs] { ++runs; });
  for (int i = 1; i < 2000; ++i) {
    const TaskId t = g.add(TaskKind::kGeneric, i, [&runs] { ++runs; });
    g.add_edge(prev, t);
    prev = t;
  }
  TaskPool pool(kThreads);
  const auto stats = pool.run(g);
  EXPECT_EQ(runs.load(), 2000);
  EXPECT_EQ(stats.tasks_run, 2000u);
}

TEST(TaskPoolStats, WorkerCountersAccountForEveryTask) {
  TaskGraph g;
  const TaskId src = g.add(TaskKind::kGeneric, -1, {});
  for (int i = 0; i < 100; ++i) {
    const TaskId t = g.add(TaskKind::kGeneric, i, [] {
      (void)(BigInt::pow2(5000) * BigInt::pow2(5000));
    });
    g.add_edge(src, t);
  }
  for (PoolPolicy policy :
       {PoolPolicy::kCentralQueue, PoolPolicy::kWorkStealing}) {
    TaskPool pool(4, policy);
    const auto stats = pool.run(g);
    ASSERT_EQ(stats.workers.size(), 4u);
    std::size_t tasks = 0, steals = 0;
    for (const auto& w : stats.workers) {
      tasks += w.tasks;
      steals += w.steals;
    }
    EXPECT_EQ(tasks, 101u);
    EXPECT_EQ(steals, stats.steals);
    EXPECT_GT(stats.total_exec_seconds(), 0.0);
    EXPECT_GE(stats.wall_seconds, 0.0);
    // The queue must have been observed holding the full fan-out at least
    // once (all 100 children become ready when src completes).
    std::size_t high_water = 0;
    for (const auto& w : stats.workers) {
      high_water = std::max(high_water, w.queue_high_water);
    }
    EXPECT_GE(high_water, policy == PoolPolicy::kCentralQueue ? 100u : 25u);
    const std::string table = instr::format_workers(stats.workers);
    EXPECT_NE(table.find("worker"), std::string::npos);
    EXPECT_NE(table.find("total"), std::string::npos);
  }
}

TEST(TaskPoolStats, StealsAreZeroUnderCentralQueue) {
  TaskGraph g;
  const TaskId src = g.add(TaskKind::kGeneric, -1, {});
  for (int i = 0; i < 32; ++i) {
    const TaskId t = g.add(TaskKind::kGeneric, i, [] {
      (void)(BigInt::pow2(10000) * BigInt::pow2(10000));
    });
    g.add_edge(src, t);
  }
  TaskPool pool(4, PoolPolicy::kCentralQueue);
  const auto stats = pool.run(g);
  EXPECT_EQ(stats.steals, 0u);
  for (const auto& w : stats.workers) EXPECT_EQ(w.steals, 0u);
}

TEST(TaskPoolStats, TimelineCoversEveryTaskOnce) {
  TaskGraph g;
  std::vector<TaskId> ids;
  for (int i = 0; i < 40; ++i) {
    ids.push_back(g.add(TaskKind::kGeneric, i, [] {
      (void)(BigInt(7) * BigInt(9));
    }));
    if (i > 0) g.add_edge(ids[static_cast<std::size_t>(i - 1)], ids.back());
  }
  TaskPool pool(2, PoolPolicy::kWorkStealing);
  const auto stats = pool.run(g);
  ASSERT_EQ(stats.timeline.entries.size(), 40u);
  EXPECT_EQ(stats.timeline.workers, 2);
  std::vector<bool> seen(40, false);
  double prev_finish = 0;
  for (const auto& e : stats.timeline.entries) {
    ASSERT_GE(e.task, 0);
    ASSERT_LT(e.task, 40);
    EXPECT_FALSE(seen[static_cast<std::size_t>(e.task)]);
    seen[static_cast<std::size_t>(e.task)] = true;
    EXPECT_LE(e.start, e.finish);
    EXPECT_GE(e.finish, prev_finish);  // completion order
    prev_finish = e.finish;
    EXPECT_GE(e.worker, 0);
    EXPECT_LT(e.worker, 2);
  }
  EXPECT_LE(stats.timeline.span(), stats.wall_seconds + 1e-3);
  EXPECT_NEAR(stats.timeline.busy_seconds(),
              stats.timeline.busy_seconds_for(0) +
                  stats.timeline.busy_seconds_for(1),
              1e-12);
}

TEST(Timeline, SaveLoadRoundTrip) {
  ExecutionTimeline tl;
  tl.workers = 3;
  tl.entries = {{0, 0, 0.0, 0.5}, {2, 1, 0.1, 0.7}, {1, 2, 0.5, 0.9}};
  std::stringstream ss;
  tl.save(ss);
  const ExecutionTimeline back = ExecutionTimeline::load(ss);
  ASSERT_EQ(back.entries.size(), 3u);
  EXPECT_EQ(back.workers, 3);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(back.entries[i].task, tl.entries[i].task);
    EXPECT_EQ(back.entries[i].worker, tl.entries[i].worker);
    EXPECT_NEAR(back.entries[i].start, tl.entries[i].start, 1e-9);
    EXPECT_NEAR(back.entries[i].finish, tl.entries[i].finish, 1e-9);
  }
}

TEST(Timeline, LoadRejectsMalformedInput) {
  {
    std::stringstream ss("0 1\n0 0 0 1");  // zero workers
    EXPECT_THROW(ExecutionTimeline::load(ss), InvalidArgument);
  }
  {
    std::stringstream ss("2 2\n0 0 0.0 1.0\n");  // truncated entry list
    EXPECT_THROW(ExecutionTimeline::load(ss), InvalidArgument);
  }
  {
    std::stringstream ss("2 1\n0 5 0.0 1.0\n");  // worker out of range
    EXPECT_THROW(ExecutionTimeline::load(ss), InvalidArgument);
  }
  {
    std::stringstream ss("2 1\n0 0 2.0 1.0\n");  // finish before start
    EXPECT_THROW(ExecutionTimeline::load(ss), InvalidArgument);
  }
}

TEST(Trace, FromGraphAndBreakdown) {
  TaskGraph g;
  const TaskId a = g.add(TaskKind::kSort, 3, {});
  const TaskId b = g.add(TaskKind::kInterval, 3, {});
  g.add_edge(a, b);
  g.task(a).cost = 7;
  g.task(b).cost = 9;
  const TaskTrace tr = TaskTrace::from_graph(g);
  EXPECT_EQ(tr.size(), 2u);
  EXPECT_EQ(tr.total_cost(), 16u);
  EXPECT_EQ(tr.critical_path(), 16u);
  EXPECT_EQ(tr.tasks[0].kind, TaskKind::kSort);
  const std::string breakdown = tr.cost_breakdown();
  EXPECT_NE(breakdown.find("sort"), std::string::npos);
  EXPECT_NE(breakdown.find("interval"), std::string::npos);
}

TEST(Trace, SaveLoadRoundTrip) {
  TaskGraph g;
  const TaskId a = g.add(TaskKind::kCoeff, 2, {});
  const TaskId b = g.add(TaskKind::kQuotient, 4, {});
  const TaskId c = g.add(TaskKind::kIterMark, 4, {});
  g.add_edge(a, b);
  g.add_edge(a, c);
  g.add_edge(b, c);
  g.task(a).cost = 11;
  g.task(b).cost = 22;
  g.task(c).cost = 0;
  const TaskTrace tr = TaskTrace::from_graph(g);
  std::stringstream ss;
  tr.save(ss);
  const TaskTrace back = TaskTrace::load(ss);
  ASSERT_EQ(back.size(), tr.size());
  for (std::size_t i = 0; i < tr.size(); ++i) {
    EXPECT_EQ(back.tasks[i].cost, tr.tasks[i].cost);
    EXPECT_EQ(back.tasks[i].kind, tr.tasks[i].kind);
    EXPECT_EQ(back.tasks[i].tag, tr.tasks[i].tag);
    EXPECT_EQ(back.tasks[i].num_deps, tr.tasks[i].num_deps);
    EXPECT_EQ(back.tasks[i].dependents, tr.tasks[i].dependents);
  }
  EXPECT_EQ(back.total_cost(), 33u);
}

TEST(TaskPoolStealing, RunsEveryTaskOnce) {
  TaskGraph g;
  std::atomic<int> runs{0};
  std::vector<TaskId> ids;
  for (int i = 0; i < 300; ++i) {
    ids.push_back(g.add(TaskKind::kGeneric, i, [&runs] { ++runs; }));
  }
  for (int i = 1; i < 300; ++i) {
    if (i % 3 != 0) g.add_edge(ids[static_cast<std::size_t>(i - 1)],
                               ids[static_cast<std::size_t>(i)]);
  }
  TaskPool pool(4, PoolPolicy::kWorkStealing);
  const auto stats = pool.run(g);
  EXPECT_EQ(runs.load(), 300);
  EXPECT_EQ(stats.tasks_run, 300u);
}

TEST(TaskPoolStealing, RespectsDependencies) {
  TaskGraph g;
  std::atomic<bool> first_done{false};
  std::atomic<bool> order_ok{true};
  const TaskId a = g.add(TaskKind::kGeneric, 0,
                         [&] { first_done = true; });
  const TaskId b = g.add(TaskKind::kGeneric, 1, [&] {
    if (!first_done) order_ok = false;
  });
  g.add_edge(a, b);
  TaskPool pool(4, PoolPolicy::kWorkStealing);
  pool.run(g);
  EXPECT_TRUE(order_ok);
}

TEST(TaskPoolStealing, PropagatesExceptions) {
  TaskGraph g;
  g.add(TaskKind::kGeneric, 0, [] { throw InvalidArgument("boom"); });
  TaskPool pool(3, PoolPolicy::kWorkStealing);
  EXPECT_THROW(pool.run(g), InvalidArgument);
}

TEST(TaskPoolStealing, SingleThreadWorks) {
  TaskGraph g;
  int count = 0;
  const TaskId a = g.add(TaskKind::kGeneric, 0, [&] { ++count; });
  const TaskId b = g.add(TaskKind::kGeneric, 1, [&] { ++count; });
  g.add_edge(a, b);
  TaskPool pool(1, PoolPolicy::kWorkStealing);
  pool.run(g);
  EXPECT_EQ(count, 2);
}

TEST(TaskPoolStealing, StealsHappenUnderLoad) {
  // A wide graph with imbalanced seeding: worker 0 gets everything
  // initially, so others must steal.
  TaskGraph g;
  const TaskId src = g.add(TaskKind::kGeneric, -1, {});
  for (int i = 0; i < 64; ++i) {
    const TaskId t = g.add(TaskKind::kGeneric, i, [] {
      // Slow enough (~ms) that the other workers wake up and steal even
      // on a single-core host.
      (void)(BigInt::pow2(40000) * BigInt::pow2(40000));
    });
    g.add_edge(src, t);
  }
  TaskPool pool(4, PoolPolicy::kWorkStealing);
  const auto stats = pool.run(g);
  EXPECT_EQ(stats.tasks_run, 65u);
  // All fan-out tasks become ready on worker 0's deque at once; with 4
  // workers some stealing is essentially certain.
  EXPECT_GT(stats.steals, 0u);
}

TEST(Trace, DotExportHasNodesAndEdges) {
  TaskGraph g;
  const TaskId a = g.add(TaskKind::kQuotient, 3, {});
  const TaskId b = g.add(TaskKind::kCoeff, 3, {});
  g.add_edge(a, b);
  g.task(a).cost = 5;
  const TaskTrace tr = TaskTrace::from_graph(g);
  std::stringstream ss;
  tr.save_dot(ss);
  const std::string dot = ss.str();
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("quotient 3"), std::string::npos);
  EXPECT_NE(dot.find("t0 -> t1"), std::string::npos);
}

// Task-record format: "cost kind tag num_deps ndeps dep...".  Every load
// failure must be a pr::Error (InvalidArgument) carrying the offending
// line number, never a silently-corrupt trace or a crash in the DES.
TEST(Trace, LoadRejectsMalformedInput) {
  const auto rejects = [](const char* text, const char* what) {
    std::stringstream ss(text);
    try {
      (void)TaskTrace::load(ss);
      FAIL() << "accepted " << what << ": " << text;
    } catch (const InvalidArgument& e) {
      EXPECT_NE(std::string(e.what()).find("line"), std::string::npos)
          << what << " error lacks line context: " << e.what();
    }
  };
  rejects("3\n1 0 0 0 0", "truncated input (3 declared, 1 present)");
  rejects("-1", "negative task count");
  rejects("1\n1 0 0 -2 0", "negative num_deps");
  rejects("1\n1 0 0 0 -1", "negative dependent count");
  rejects("2\n1 0 0 0 1 5\n1 0 0 1 0", "out-of-range dependent id");
  rejects("1\n1 0 0 0 1 0", "self-dependency");
  rejects("1\n1 99 0 0 0", "out-of-range task kind");
  rejects("1\n1 0 0 0", "truncated task record");
  rejects("1\n1 0 0 0 0 7", "trailing data on task record");
  {
    // In-degree/edge mismatches are only detectable once the whole file is
    // read; the error names the inconsistent task instead of a line.
    std::stringstream ss("2\n1 0 0 0 0\n1 0 0 1 0");
    EXPECT_THROW(TaskTrace::load(ss), InvalidArgument)
        << "declared in-degree with no matching edge";
    std::stringstream ss2("2\n1 0 0 0 1 1\n1 0 0 0 0");
    EXPECT_THROW(TaskTrace::load(ss2), InvalidArgument)
        << "edge into a task declaring zero deps";
  }
}

TEST(Trace, LoadAcceptsBlankAndPaddedLines) {
  std::stringstream ss("2\n\n  5 0 3 0 1 1  \n\n7 1 -1 1 0\n");
  const TaskTrace tr = TaskTrace::load(ss);
  ASSERT_EQ(tr.tasks.size(), 2u);
  EXPECT_EQ(tr.tasks[0].cost, 5u);
  EXPECT_EQ(tr.tasks[0].dependents, std::vector<TaskId>{1});
  EXPECT_EQ(tr.tasks[1].num_deps, 1);
  EXPECT_EQ(tr.tasks[1].tag, -1);
}

TEST(Trace, KindNamesAreStable) {
  EXPECT_STREQ(task_kind_name(TaskKind::kSeed), "seed");
  EXPECT_STREQ(task_kind_name(TaskKind::kMatEntry2), "matentry2");
  EXPECT_STREQ(task_kind_name(TaskKind::kRootsMark), "rootsmark");
}

}  // namespace
}  // namespace pr
