#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <sstream>

#include "bigint/bigint.hpp"
#include "sched/task_graph.hpp"
#include "sched/task_pool.hpp"
#include "sched/trace.hpp"
#include "support/error.hpp"

namespace pr {
namespace {

TEST(TaskGraph, AddAndEdges) {
  TaskGraph g;
  const TaskId a = g.add(TaskKind::kGeneric, 1, {});
  const TaskId b = g.add(TaskKind::kGeneric, 2, {});
  g.add_edge(a, b);
  EXPECT_EQ(g.size(), 2u);
  EXPECT_EQ(g.task(a).dependents, std::vector<TaskId>{b});
  EXPECT_EQ(g.task(b).num_deps, 1);
  EXPECT_EQ(g.initial_tasks(), std::vector<TaskId>{a});
  EXPECT_NO_THROW(g.validate());
}

TEST(TaskGraph, EdgeValidation) {
  TaskGraph g;
  const TaskId a = g.add(TaskKind::kGeneric, 0, {});
  EXPECT_THROW(g.add_edge(a, a), InvalidArgument);
  EXPECT_THROW(g.add_edge(a, 99), InvalidArgument);
  EXPECT_THROW(g.add_edge(-1, a), InvalidArgument);
}

TEST(TaskGraph, CycleDetection) {
  TaskGraph g;
  const TaskId a = g.add(TaskKind::kGeneric, 0, {});
  const TaskId b = g.add(TaskKind::kGeneric, 1, {});
  g.add_edge(a, b);
  g.add_edge(b, a);
  EXPECT_THROW(g.validate(), InternalError);
}

TEST(TaskGraph, CriticalPathAndTotalCost) {
  // Diamond: a -> {b, c} -> d with costs 1, 10, 2, 5.
  TaskGraph g;
  const TaskId a = g.add(TaskKind::kGeneric, 0, {});
  const TaskId b = g.add(TaskKind::kGeneric, 1, {});
  const TaskId c = g.add(TaskKind::kGeneric, 2, {});
  const TaskId d = g.add(TaskKind::kGeneric, 3, {});
  g.add_edge(a, b);
  g.add_edge(a, c);
  g.add_edge(b, d);
  g.add_edge(c, d);
  g.task(a).cost = 1;
  g.task(b).cost = 10;
  g.task(c).cost = 2;
  g.task(d).cost = 5;
  EXPECT_EQ(g.total_cost(), 18u);
  EXPECT_EQ(g.critical_path_cost(), 16u);  // a + b + d
  EXPECT_EQ(g.critical_path_cost(1), 19u);
}

TEST(TaskPool, RunsEveryTaskOnce) {
  TaskGraph g;
  std::atomic<int> runs{0};
  std::vector<TaskId> ids;
  for (int i = 0; i < 50; ++i) {
    ids.push_back(g.add(TaskKind::kGeneric, i, [&runs] { ++runs; }));
  }
  // Chain dependencies 0 -> 1 -> ... -> 49 plus cross edges.
  for (int i = 1; i < 50; ++i) g.add_edge(ids[i - 1], ids[i]);
  for (int i = 0; i + 10 < 50; i += 7) g.add_edge(ids[i], ids[i + 10]);
  TaskPool pool(1);
  const auto stats = pool.run(g);
  EXPECT_EQ(runs.load(), 50);
  EXPECT_EQ(stats.tasks_run, 50u);
}

TEST(TaskPool, RespectsDependencyOrder) {
  TaskGraph g;
  std::vector<int> order;
  std::mutex m;
  const TaskId a = g.add(TaskKind::kGeneric, 0, [&] {
    std::lock_guard<std::mutex> lock(m);
    order.push_back(0);
  });
  const TaskId b = g.add(TaskKind::kGeneric, 1, [&] {
    std::lock_guard<std::mutex> lock(m);
    order.push_back(1);
  });
  const TaskId c = g.add(TaskKind::kGeneric, 2, [&] {
    std::lock_guard<std::mutex> lock(m);
    order.push_back(2);
  });
  g.add_edge(a, b);
  g.add_edge(b, c);
  TaskPool pool(4);
  pool.run(g);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(TaskPool, MultiThreadedStress) {
  // Wide fan-out/fan-in graph run with several threads; verify the sum.
  TaskGraph g;
  constexpr int kWidth = 200;
  std::vector<int> results(kWidth, 0);
  const TaskId src = g.add(TaskKind::kGeneric, -1, {});
  const TaskId sink = g.add(TaskKind::kGeneric, -2, {});
  for (int i = 0; i < kWidth; ++i) {
    const TaskId t = g.add(TaskKind::kGeneric, i, [&results, i] {
      results[static_cast<std::size_t>(i)] = i * i;
    });
    g.add_edge(src, t);
    g.add_edge(t, sink);
  }
  TaskPool pool(8);
  pool.run(g);
  long long sum = 0;
  for (int v : results) sum += v;
  EXPECT_EQ(sum, 200LL * 199 * 399 / 6);
}

TEST(TaskPool, RecordsBigIntCosts) {
  TaskGraph g;
  const TaskId cheap = g.add(TaskKind::kGeneric, 0, [] {
    (void)(BigInt(3) * BigInt(5));
  });
  const TaskId costly = g.add(TaskKind::kGeneric, 1, [] {
    (void)(BigInt::pow2(5000) * BigInt::pow2(5000));
  });
  TaskPool pool(1);
  pool.run(g);
  EXPECT_GT(g.task(costly).cost, g.task(cheap).cost);
  EXPECT_GT(g.task(costly).cost, 5000u * 5000u);
}

TEST(TaskPool, PropagatesExceptions) {
  TaskGraph g;
  g.add(TaskKind::kGeneric, 0, [] { throw InvalidArgument("boom"); });
  g.add(TaskKind::kGeneric, 1, {});
  TaskPool pool(2);
  EXPECT_THROW(pool.run(g), InvalidArgument);
}

TEST(TaskPool, RejectsZeroThreads) {
  EXPECT_THROW(TaskPool(0), InvalidArgument);
}

TEST(Trace, FromGraphAndBreakdown) {
  TaskGraph g;
  const TaskId a = g.add(TaskKind::kSort, 3, {});
  const TaskId b = g.add(TaskKind::kInterval, 3, {});
  g.add_edge(a, b);
  g.task(a).cost = 7;
  g.task(b).cost = 9;
  const TaskTrace tr = TaskTrace::from_graph(g);
  EXPECT_EQ(tr.size(), 2u);
  EXPECT_EQ(tr.total_cost(), 16u);
  EXPECT_EQ(tr.critical_path(), 16u);
  EXPECT_EQ(tr.tasks[0].kind, TaskKind::kSort);
  const std::string breakdown = tr.cost_breakdown();
  EXPECT_NE(breakdown.find("sort"), std::string::npos);
  EXPECT_NE(breakdown.find("interval"), std::string::npos);
}

TEST(Trace, SaveLoadRoundTrip) {
  TaskGraph g;
  const TaskId a = g.add(TaskKind::kCoeff, 2, {});
  const TaskId b = g.add(TaskKind::kQuotient, 4, {});
  const TaskId c = g.add(TaskKind::kIterMark, 4, {});
  g.add_edge(a, b);
  g.add_edge(a, c);
  g.add_edge(b, c);
  g.task(a).cost = 11;
  g.task(b).cost = 22;
  g.task(c).cost = 0;
  const TaskTrace tr = TaskTrace::from_graph(g);
  std::stringstream ss;
  tr.save(ss);
  const TaskTrace back = TaskTrace::load(ss);
  ASSERT_EQ(back.size(), tr.size());
  for (std::size_t i = 0; i < tr.size(); ++i) {
    EXPECT_EQ(back.tasks[i].cost, tr.tasks[i].cost);
    EXPECT_EQ(back.tasks[i].kind, tr.tasks[i].kind);
    EXPECT_EQ(back.tasks[i].tag, tr.tasks[i].tag);
    EXPECT_EQ(back.tasks[i].num_deps, tr.tasks[i].num_deps);
    EXPECT_EQ(back.tasks[i].dependents, tr.tasks[i].dependents);
  }
  EXPECT_EQ(back.total_cost(), 33u);
}

TEST(TaskPoolStealing, RunsEveryTaskOnce) {
  TaskGraph g;
  std::atomic<int> runs{0};
  std::vector<TaskId> ids;
  for (int i = 0; i < 300; ++i) {
    ids.push_back(g.add(TaskKind::kGeneric, i, [&runs] { ++runs; }));
  }
  for (int i = 1; i < 300; ++i) {
    if (i % 3 != 0) g.add_edge(ids[static_cast<std::size_t>(i - 1)],
                               ids[static_cast<std::size_t>(i)]);
  }
  TaskPool pool(4, PoolPolicy::kWorkStealing);
  const auto stats = pool.run(g);
  EXPECT_EQ(runs.load(), 300);
  EXPECT_EQ(stats.tasks_run, 300u);
}

TEST(TaskPoolStealing, RespectsDependencies) {
  TaskGraph g;
  std::atomic<bool> first_done{false};
  std::atomic<bool> order_ok{true};
  const TaskId a = g.add(TaskKind::kGeneric, 0,
                         [&] { first_done = true; });
  const TaskId b = g.add(TaskKind::kGeneric, 1, [&] {
    if (!first_done) order_ok = false;
  });
  g.add_edge(a, b);
  TaskPool pool(4, PoolPolicy::kWorkStealing);
  pool.run(g);
  EXPECT_TRUE(order_ok);
}

TEST(TaskPoolStealing, PropagatesExceptions) {
  TaskGraph g;
  g.add(TaskKind::kGeneric, 0, [] { throw InvalidArgument("boom"); });
  TaskPool pool(3, PoolPolicy::kWorkStealing);
  EXPECT_THROW(pool.run(g), InvalidArgument);
}

TEST(TaskPoolStealing, SingleThreadWorks) {
  TaskGraph g;
  int count = 0;
  const TaskId a = g.add(TaskKind::kGeneric, 0, [&] { ++count; });
  const TaskId b = g.add(TaskKind::kGeneric, 1, [&] { ++count; });
  g.add_edge(a, b);
  TaskPool pool(1, PoolPolicy::kWorkStealing);
  pool.run(g);
  EXPECT_EQ(count, 2);
}

TEST(TaskPoolStealing, StealsHappenUnderLoad) {
  // A wide graph with imbalanced seeding: worker 0 gets everything
  // initially, so others must steal.
  TaskGraph g;
  const TaskId src = g.add(TaskKind::kGeneric, -1, {});
  for (int i = 0; i < 64; ++i) {
    const TaskId t = g.add(TaskKind::kGeneric, i, [] {
      // Slow enough (~ms) that the other workers wake up and steal even
      // on a single-core host.
      (void)(BigInt::pow2(40000) * BigInt::pow2(40000));
    });
    g.add_edge(src, t);
  }
  TaskPool pool(4, PoolPolicy::kWorkStealing);
  const auto stats = pool.run(g);
  EXPECT_EQ(stats.tasks_run, 65u);
  // All fan-out tasks become ready on worker 0's deque at once; with 4
  // workers some stealing is essentially certain.
  EXPECT_GT(stats.steals, 0u);
}

TEST(Trace, DotExportHasNodesAndEdges) {
  TaskGraph g;
  const TaskId a = g.add(TaskKind::kQuotient, 3, {});
  const TaskId b = g.add(TaskKind::kCoeff, 3, {});
  g.add_edge(a, b);
  g.task(a).cost = 5;
  const TaskTrace tr = TaskTrace::from_graph(g);
  std::stringstream ss;
  tr.save_dot(ss);
  const std::string dot = ss.str();
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("quotient 3"), std::string::npos);
  EXPECT_NE(dot.find("t0 -> t1"), std::string::npos);
}

TEST(Trace, LoadRejectsMalformedInput) {
  std::stringstream ss("3\n1 0 0 0"); // truncated
  EXPECT_THROW(TaskTrace::load(ss), InvalidArgument);
}

TEST(Trace, KindNamesAreStable) {
  EXPECT_STREQ(task_kind_name(TaskKind::kSeed), "seed");
  EXPECT_STREQ(task_kind_name(TaskKind::kMatEntry2), "matentry2");
  EXPECT_STREQ(task_kind_name(TaskKind::kRootsMark), "rootsmark");
}

}  // namespace
}  // namespace pr
