// Eigenvalues of a symmetric integer matrix -- the paper's own workload
// (Section 5): the characteristic polynomial of a symmetric matrix has
// all roots real, so the tree algorithm computes the full spectrum.
//
//   $ example_eigenvalues [n]
//
// Builds a random symmetric 0/1 matrix (default n = 24), computes its
// characteristic polynomial with the division-free Berkowitz algorithm,
// approximates every eigenvalue to 50 digits, and verifies the trace and
// Frobenius identities.
#include <cstdlib>
#include <iostream>

#include "polyroots.hpp"

int main(int argc, char** argv) {
  const std::size_t n =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 24;

  pr::Prng rng(2026);
  const pr::IntMatrix a = pr::random_01_symmetric_matrix(n, rng);
  std::cout << "random symmetric 0/1 matrix, n = " << n << "\n";

  pr::Stopwatch sw;
  const pr::Poly charpoly = pr::charpoly_berkowitz(a);
  std::cout << "characteristic polynomial: degree " << charpoly.degree()
            << ", coefficients up to " << charpoly.max_coeff_bits()
            << " bits (" << pr::fixed(sw.millis(), 1) << " ms)\n";

  pr::RootFinderConfig cfg;
  cfg.mu_bits = 167;  // ~50 decimal digits
  sw.restart();
  const pr::Spectrum spec = pr::symmetric_eigenvalues(a, cfg);
  std::cout << "eigenvalues (" << pr::fixed(sw.millis(), 1) << " ms):\n";
  for (std::size_t i = 0; i < spec.distinct(); ++i) {
    std::cout << "  lambda_" << i << " = "
              << pr::scaled_to_string(spec.eigenvalues[i], spec.mu, 30);
    if (spec.multiplicities[i] != 1) {
      std::cout << "  (x" << spec.multiplicities[i] << ")";
    }
    std::cout << "\n";
  }
  const auto& report = spec.report;

  // Sanity identities: sum lambda_i = tr(A); sum lambda_i^2 = tr(A^2).
  double sum = 0, sumsq = 0;
  for (std::size_t i = 0; i < spec.distinct(); ++i) {
    const double v = spec.eigenvalue_as_double(i);
    sum += v * spec.multiplicities[i];
    sumsq += v * v * spec.multiplicities[i];
  }
  (void)report;
  std::cout << "\ncheck: sum(lambda) = " << pr::fixed(sum, 9)
            << " vs tr(A) = " << a.trace() << "\n"
            << "check: sum(lambda^2) = " << pr::fixed(sumsq, 9)
            << " vs tr(A^2) = " << (a * a).trace() << "\n";
  return 0;
}
