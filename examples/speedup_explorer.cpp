// Speedup explorer: record the task DAG of one parallel run, then replay
// it in the discrete-event multiprocessor simulator across processor
// counts and dispatch overheads -- the machinery behind the paper's
// Figures 9-13 (see DESIGN.md "Substitutions").
//
//   $ example_speedup_explorer [n] [mu_bits]
//   $ example_speedup_explorer --save trace.txt [n] [mu_bits]
//   $ example_speedup_explorer --load trace.txt
//   $ example_speedup_explorer --dot graph.dot 8 20   # Graphviz export
//
// Traces are plain text (sched/trace.hpp), so a recorded DAG can be
// archived and replayed later without recomputing the roots.
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>

#include "polyroots.hpp"

int main(int argc, char** argv) {
  const char* save_path = nullptr;
  const char* load_path = nullptr;
  const char* dot_path = nullptr;
  int pos_args[2] = {40, 107};
  int npos = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--save") == 0 && i + 1 < argc) {
      save_path = argv[++i];
    } else if (std::strcmp(argv[i], "--load") == 0 && i + 1 < argc) {
      load_path = argv[++i];
    } else if (std::strcmp(argv[i], "--dot") == 0 && i + 1 < argc) {
      dot_path = argv[++i];
    } else if (npos < 2) {
      pos_args[npos++] = std::atoi(argv[i]);
    }
  }
  const int n = pos_args[0];
  const std::size_t mu = static_cast<std::size_t>(pos_args[1]);

  pr::TaskTrace trace;
  if (load_path) {
    std::ifstream in(load_path);
    if (!in) {
      std::cerr << "cannot open " << load_path << "\n";
      return 1;
    }
    trace = pr::TaskTrace::load(in);
    std::cout << "loaded trace with " << trace.size() << " tasks from "
              << load_path << "\n\n";
  }

  pr::ParallelRunResult run;
  if (!load_path) {
    pr::Prng rng(7);
    const auto input = pr::paper_input(static_cast<std::size_t>(n), rng);
    std::cout << "input: char poly of a random symmetric 0/1 matrix, n = "
              << n << ", m = " << input.m_bits << " bits, mu = " << mu
              << " bits\n";

    pr::RootFinderConfig cfg;
    cfg.mu_bits = mu;
    pr::ParallelConfig pc;
    pc.num_threads = 1;  // one real thread records the deterministic trace

    pr::Stopwatch sw;
    run = pr::find_real_roots_parallel(input.poly, cfg, pc);
    std::cout << "executed " << run.trace.size() << " tasks in "
              << pr::fixed(sw.millis(), 1) << " ms; "
              << run.report.roots.size() << " roots found\n\n";
    trace = run.trace;
    if (save_path) {
      std::ofstream out(save_path);
      trace.save(out);
      std::cout << "trace saved to " << save_path << "\n\n";
    }
  }
  const pr::TaskTrace& tr = trace;
  if (dot_path) {
    std::ofstream out(dot_path);
    tr.save_dot(out);
    std::cout << "DOT graph written to " << dot_path << "\n\n";
  }

  std::cout << "task breakdown:\n" << tr.cost_breakdown() << "\n";
  const auto prof = pr::parallelism_profile(tr);
  std::cout << "inherent parallelism (ASAP schedule): average "
            << pr::fixed(prof.average, 1) << ", peak " << prof.peak
            << "; fraction of time with >= {2, 4, 8, 16} tasks running: "
            << pr::fixed(prof.at_least[1], 2) << ", "
            << pr::fixed(prof.at_least[2], 2) << ", "
            << pr::fixed(prof.at_least[3], 2) << ", "
            << pr::fixed(prof.at_least[4], 2) << "\n\n";
  std::cout << "total work      : " << pr::with_commas(tr.total_cost())
            << " bit-ops\n"
            << "critical path   : "
            << pr::with_commas(tr.critical_path())
            << " bit-ops  (=> max speedup "
            << pr::fixed(static_cast<double>(tr.total_cost()) /
                             static_cast<double>(tr.critical_path()),
                         1)
            << "x)\n\n";

  pr::TextTable table({5, 12, 10, 10});
  for (const double ofrac : {0.0, 0.2, 1.0}) {
    const std::uint64_t overhead = static_cast<std::uint64_t>(
        ofrac * static_cast<double>(tr.total_cost()) /
        static_cast<double>(tr.size()));
    std::cout << "dispatch overhead = " << pr::with_commas(overhead)
              << " bit-ops/task (" << ofrac << "x mean task cost)\n"
              << table.row({"P", "makespan", "speedup", "util"}) << "\n"
              << table.rule() << "\n";
    double t1 = 0;
    for (int p : {1, 2, 4, 8, 16, 32}) {
      pr::SimConfig sc;
      sc.processors = p;
      sc.dispatch_overhead = overhead;
      const auto r = pr::simulate_schedule(tr, sc);
      if (p == 1) t1 = static_cast<double>(r.makespan);
      std::cout << table.row(
                       {std::to_string(p), pr::with_commas(r.makespan),
                        pr::fixed(t1 / static_cast<double>(r.makespan), 2),
                        pr::fixed(r.utilization(), 2)})
                << "\n";
    }
    std::cout << "\n";
  }
  std::cout << "observe: higher overhead caps the useful processor count -- "
               "the paper's\ngranularity-driven speedup collapse at 16 "
               "processors.\n";
  return 0;
}
