// Command-line root finder.
//
//   $ example_polyroots_cli "x^3 - 2*x + 1" [--digits N] [--exact]
//                           [--threads T] [--pieces P] [--stats]
//
// Parses the polynomial, finds all real roots, and prints them as
// decimals (default), exact rational enclosures (--exact), or with the
// per-phase instrumentation summary (--stats).  --threads (alias
// --parallel) selects the task-parallel driver; --pieces shards its
// interleaving tree into that many TreePieces (0 = one per thread) and,
// with --stats, reports the per-piece task/steal/exec summary.
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "polyroots.hpp"

namespace {

void usage() {
  std::cout <<
      "usage: example_polyroots_cli \"<polynomial in x>\" [options]\n"
      "  --digits N    output precision in decimal digits (default 20)\n"
      "  --exact       print exact rational enclosures ((k-1)/2^mu, k/2^mu]\n"
      "  --threads T   run the task-parallel driver with T threads\n"
      "                (--parallel T is accepted as an alias)\n"
      "  --pieces P    shard the tree into P TreePieces (0 = one per\n"
      "                thread; implies the parallel driver)\n"
      "  --stats       print the per-phase operation counters (plus the\n"
      "                per-piece summary under the parallel driver)\n"
      "examples:\n"
      "  example_polyroots_cli \"x^2 - 2\"\n"
      "  example_polyroots_cli \"x^3 - 6x^2 + 11x - 6\" --digits 40 --exact\n"
      "  example_polyroots_cli \"x^4 - 10x^2 + 1\" --threads 4 --pieces 4 "
      "--stats\n";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  int digits = 20;
  bool exact = false;
  bool stats = false;
  int threads = 0;
  int pieces = -1;  // -1 = flag absent
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--digits") == 0 && i + 1 < argc) {
      digits = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--exact") == 0) {
      exact = true;
    } else if (std::strcmp(argv[i], "--stats") == 0) {
      stats = true;
    } else if ((std::strcmp(argv[i], "--parallel") == 0 ||
                std::strcmp(argv[i], "--threads") == 0) &&
               i + 1 < argc) {
      threads = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--pieces") == 0 && i + 1 < argc) {
      pieces = std::atoi(argv[++i]);
    } else {
      std::cerr << "unknown option: " << argv[i] << "\n";
      usage();
      return 2;
    }
  }
  if (digits < 1 || digits > 100000) {
    std::cerr << "--digits out of range\n";
    return 2;
  }
  if (pieces >= 0 && threads <= 0) threads = 1;  // --pieces implies parallel
  if (pieces < -1) {
    std::cerr << "--pieces out of range\n";
    return 2;
  }

  pr::Poly p;
  try {
    p = pr::Poly::parse(argv[1]);
  } catch (const pr::Error& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }
  if (p.degree() < 1) {
    std::cerr << "polynomial must be non-constant\n";
    return 2;
  }

  pr::RootFinderConfig cfg;
  cfg.mu_bits = static_cast<std::size_t>(
      std::ceil(digits * std::log2(10.0))) + 4;

  pr::instr::reset_all();
  pr::RootReport report;
  pr::ParallelRunResult prun;
  bool ran_parallel = false;
  try {
    if (threads > 0) {
      pr::ParallelConfig pc;
      pc.num_threads = threads;
      if (pieces >= 0) pc.pieces.num_pieces = pieces;
      prun = pr::find_real_roots_parallel(p, cfg, pc);
      report = prun.report;
      ran_parallel = !prun.used_sequential_fallback;
    } else {
      report = pr::find_real_roots(p, cfg);
    }
  } catch (const pr::Error& e) {
    std::cerr << "root finding failed: " << e.what() << "\n";
    return 1;
  }

  std::cout << "p(x) = " << p << "\n";
  if (report.roots.empty()) {
    std::cout << "no real roots\n";
  }
  for (std::size_t i = 0; i < report.roots.size(); ++i) {
    std::cout << "x_" << i << " = "
              << pr::scaled_to_string(report.roots[i], report.mu, digits);
    if (report.multiplicities[i] != 1) {
      std::cout << "  (multiplicity " << report.multiplicities[i] << ")";
    }
    std::cout << "\n";
    if (exact) {
      const auto enc = pr::root_enclosure(report.roots[i], report.mu);
      std::cout << "      in (" << enc.lo << ", " << enc.hi << "]\n";
    }
  }
  if (report.used_sturm_fallback) {
    std::cout << "(used the Sturm fallback: the input has non-real roots "
                 "or a degenerate sequence)\n";
  }
  if (stats) {
    std::cout << "\n" << pr::instr::format(pr::instr::aggregate());
    if (ran_parallel) {
      std::cout << "\npieces: " << prun.num_pieces
                << "  (split level " << prun.split_level << ")\n"
                << "steals: " << prun.pool.steals << "  cross-piece: "
                << prun.pool.cross_piece_steals << "\n";
      if (!prun.pool.pieces.empty()) {
        std::cout << pr::instr::format_pieces(prun.pool.pieces);
      }
    }
  }
  return 0;
}
