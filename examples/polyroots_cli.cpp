// Command-line root finder.
//
//   $ example_polyroots_cli "x^3 - 2*x + 1" [--digits N] [--exact]
//                           [--threads T] [--pieces P] [--stats]
//   $ example_polyroots_cli --batch FILE [--digits N] [--threads T] [...]
//   $ example_polyroots_cli --serve [--digits N] [--threads T] [...]
//   $ example_polyroots_cli --calibrate [--quick] [--out FILE]
//
// --calibrate microbenchmarks the dispatch-ladder crossovers on this
// host (calibrate/autotune.hpp) and writes a calibration profile JSON to
// --out, or to $POLYROOTS_CALIBRATION when set, or to
// ./polyroots_calibration.json.  Every other mode loads the profile
// named by $POLYROOTS_CALIBRATION at startup (falling back to compiled
// defaults with a stderr diagnostic on any problem); profiles move only
// dispatch crossovers, never results.
//
// Single-shot mode parses the polynomial, finds all real roots, and
// prints them as decimals (default), exact rational enclosures (--exact),
// or with the per-phase instrumentation summary (--stats).  --threads
// (alias --parallel) selects the task-parallel driver; --pieces shards
// its interleaving tree into that many TreePieces (0 = one per thread)
// and, with --stats, reports the per-piece task/steal/exec summary.
//
// --batch FILE routes one request line per file line ("-" = stdin)
// through the RootService: duplicate lines collapse onto one computation,
// distinct cache misses are co-staged onto one shared TaskPool, and
// repeats hit the result cache.  --serve is the interactive flavor: it
// reads request lines from stdin and answers each as it arrives (also
// service-backed, so repeated queries hit the cache).  --no-cache
// disables the result cache in either mode; --stats appends the service
// counter summary.
//
// All numeric options are strictly validated: a malformed or
// out-of-range value (e.g. "--threads x") is a usage error (exit 2) with
// a diagnostic naming the flag, never silently treated as 0.
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "calibrate/autotune.hpp"
#include "calibrate/calibrate.hpp"
#include "modular/simd/simd.hpp"
#include "modular/tuning.hpp"
#include "polyroots.hpp"
#include "service/root_service.hpp"

namespace {

void usage() {
  std::cout <<
      "usage: example_polyroots_cli \"<polynomial in x>\" [options]\n"
      "       example_polyroots_cli --batch FILE [options]\n"
      "       example_polyroots_cli --serve [options]\n"
      "  --digits N    output precision in decimal digits (default 20)\n"
      "  --exact       print exact rational enclosures ((k-1)/2^mu, k/2^mu]\n"
      "  --threads T   run the task-parallel driver with T threads\n"
      "                (--parallel T is accepted as an alias)\n"
      "  --pieces P    shard the tree into P TreePieces (0 = one per\n"
      "                thread; implies the parallel driver)\n"
      "  --finder F    isolation pipeline: \"paper\" (interleaving tree,\n"
      "                default) or \"radii\" (root-radii + Descartes + QIR;\n"
      "                accepts square-free inputs with complex roots)\n"
      "  --batch FILE  serve every request line of FILE (\"-\" = stdin)\n"
      "                through the batching RootService\n"
      "  --serve       read request lines from stdin, answer each\n"
      "                (service-backed: repeats hit the result cache)\n"
      "  --no-cache    disable the service result cache\n"
      "  --stats       print the per-phase operation counters (plus the\n"
      "                per-piece summary under the parallel driver, or\n"
      "                the service counters in batch/serve mode)\n"
      "  --calibrate   measure the dispatch crossovers on this host and\n"
      "                write a calibration profile (--out FILE overrides\n"
      "                $POLYROOTS_CALIBRATION, default\n"
      "                ./polyroots_calibration.json); --quick runs a\n"
      "                coarse, fast grid\n"
      "examples:\n"
      "  example_polyroots_cli \"x^2 - 2\"\n"
      "  example_polyroots_cli \"x^3 - 6x^2 + 11x - 6\" --digits 40 --exact\n"
      "  example_polyroots_cli \"x^4 - 10x^2 + 1\" --threads 4 --pieces 4 "
      "--stats\n"
      "  example_polyroots_cli \"x^3 - 2\" --finder radii\n"
      "  example_polyroots_cli --batch requests.txt --threads 4 --stats\n";
}

/// Strict numeric option parsing: `value` must be a whole base-10
/// integer in [min, max].  On failure prints a diagnostic naming the
/// flag and exits 2 -- "--threads x" must never silently become 0.
long option_value(const char* flag, const char* value, long min, long max) {
  long out = 0;
  if (!pr::parse_long_strict(value, min, max, out)) {
    std::cerr << "invalid value for " << flag << ": \"" << value
              << "\" (expected an integer in [" << min << ", " << max
              << "])\n";
    std::exit(2);
  }
  return out;
}

/// Fetches the value of a value-taking flag, diagnosing a flag that ends
/// argv ("... --digits") as missing its value, not as an unknown option.
const char* option_arg(const char* flag, int argc, char** argv, int& i) {
  if (i + 1 >= argc) {
    std::cerr << "missing value for " << flag << "\n";
    std::exit(2);
  }
  return argv[++i];
}

/// Strict strategy parsing: only the two strategy names are accepted;
/// anything else is a usage error (exit 2) naming the flag.
pr::FinderStrategy finder_value(const char* value) {
  if (std::strcmp(value, "paper") == 0) return pr::FinderStrategy::kPaper;
  if (std::strcmp(value, "radii") == 0) return pr::FinderStrategy::kRadii;
  std::cerr << "invalid value for --finder: \"" << value
            << "\" (expected \"paper\" or \"radii\")\n";
  std::exit(2);
}

const char* outcome_name(const pr::service::ServiceResult& r) {
  if (r.deduplicated) return "dedup";
  switch (r.outcome) {
    case pr::service::CacheOutcome::kHitFull: return "hit";
    case pr::service::CacheOutcome::kHitDerived: return "hit-derived";
    case pr::service::CacheOutcome::kHitRefined: return "hit-refined";
    case pr::service::CacheOutcome::kMiss: break;
  }
  return "miss";
}

void print_service_result(std::size_t line_no,
                          const pr::service::ServiceResult& r, int digits,
                          bool exact) {
  if (!r.ok) {
    // Batch diagnostics already carry their own "line N: " prefix.
    const std::string prefix = "line " + std::to_string(line_no) + ": ";
    const bool prefixed = r.error.compare(0, prefix.size(), prefix) == 0;
    std::cout << prefix << "error: "
              << (prefixed ? r.error.substr(prefix.size()) : r.error) << "\n";
    return;
  }
  std::cout << "line " << line_no << " [" << outcome_name(r) << "]:";
  if (r.report.roots.empty()) std::cout << " no real roots";
  for (std::size_t i = 0; i < r.report.roots.size(); ++i) {
    std::cout << " "
              << pr::scaled_to_string(r.report.roots[i], r.report.mu,
                                      digits);
    if (r.report.multiplicities[i] != 1) {
      std::cout << "(m" << r.report.multiplicities[i] << ")";
    }
  }
  std::cout << "\n";
  if (exact) {
    for (std::size_t i = 0; i < r.report.roots.size(); ++i) {
      const auto enc = pr::root_enclosure(r.report.roots[i], r.report.mu);
      std::cout << "      x_" << i << " in (" << enc.lo << ", " << enc.hi
                << "]\n";
    }
  }
}

void print_kernel_stats() {
  namespace simd = pr::modular::simd;
  std::cout << "\nmod-p kernels: " << simd::isa_name(simd::active_isa())
            << "  (available:";
  for (const simd::Isa isa : simd::available_isas()) {
    std::cout << " " << simd::isa_name(isa);
  }
  const auto d = pr::BigInt::mul_dispatch();
  std::cout << "; POLYROOTS_SIMD caps the pick)\n"
            << "bigint mul dispatch: schoolbook"
            << (d.karatsuba ? " | karatsuba >= " +
                                  std::to_string(d.karatsuba_threshold) +
                                  " limbs"
                            : "")
            << (d.ntt ? " | ntt >= " + std::to_string(d.ntt_threshold) +
                            " limbs"
                      : "")
            << "\n";
  const auto fast = pr::MulDispatch::fast();
  const auto mt = pr::modular::modular_tuning();
  std::cout << "calibration: " << pr::calibrate::active_profile_id()
            << "  (POLYROOTS_CALIBRATION loads a profile)\n"
            << "  fast() thresholds: karatsuba " << fast.karatsuba_threshold
            << " limbs, ntt " << fast.ntt_threshold << " limbs\n"
            << "  mod-p ntt: min operand " << mt.ntt.min_operand
            << ", butterfly units "
            << (mt.ntt.butterfly_units > 0.0
                    ? std::to_string(mt.ntt.butterfly_units)
                    : std::string("per-ISA default"))
            << "\n";
}

void print_service_stats(const pr::service::RootService& service) {
  const auto s = service.stats();
  std::cout << "\nservice: requests " << s.requests << "  invalid "
            << s.invalid << "  misses " << s.misses << "\n"
            << "  hits: full " << s.hits_full << "  derived "
            << s.hits_derived << "  refined " << s.hits_refined
            << "  (refine fallbacks " << s.refine_fallbacks << ")\n"
            << "  dedup: in-flight " << s.dedup_waits << "  in-batch "
            << s.batch_dedup << "\n"
            << "  batch: shared runs " << s.batch_runs << "  trees staged "
            << s.batch_staged << "  fallbacks " << s.batch_fallbacks
            << "\n"
            << "  cache: size " << s.cache_size << "  evictions "
            << s.evictions << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  int digits = 20;
  bool exact = false;
  bool stats = false;
  bool serve = false;
  bool no_cache = false;
  bool calibrate = false;
  bool quick = false;
  const char* out_file = nullptr;
  const char* batch_file = nullptr;
  int threads = 0;
  int pieces = -1;  // -1 = flag absent
  pr::FinderStrategy finder = pr::FinderStrategy::kPaper;
  const char* poly_text = nullptr;

  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--digits") == 0) {
      digits = static_cast<int>(option_value(
          "--digits", option_arg("--digits", argc, argv, i), 1, 100000));
    } else if (std::strcmp(argv[i], "--exact") == 0) {
      exact = true;
    } else if (std::strcmp(argv[i], "--stats") == 0) {
      stats = true;
    } else if (std::strcmp(argv[i], "--serve") == 0) {
      serve = true;
    } else if (std::strcmp(argv[i], "--no-cache") == 0) {
      no_cache = true;
    } else if (std::strcmp(argv[i], "--calibrate") == 0) {
      calibrate = true;
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0) {
      out_file = option_arg("--out", argc, argv, i);
    } else if (std::strcmp(argv[i], "--finder") == 0) {
      finder = finder_value(option_arg("--finder", argc, argv, i));
    } else if (std::strcmp(argv[i], "--batch") == 0) {
      batch_file = option_arg("--batch", argc, argv, i);
    } else if (std::strcmp(argv[i], "--parallel") == 0 ||
               std::strcmp(argv[i], "--threads") == 0) {
      const char* flag = argv[i];
      threads = static_cast<int>(
          option_value(flag, option_arg(flag, argc, argv, i), 1, 1024));
    } else if (std::strcmp(argv[i], "--pieces") == 0) {
      pieces = static_cast<int>(option_value(
          "--pieces", option_arg("--pieces", argc, argv, i), 0, 100000));
    } else if (argv[i][0] == '-' && argv[i][1] == '-') {
      std::cerr << "unknown option: " << argv[i] << "\n";
      usage();
      return 2;
    } else if (poly_text == nullptr) {
      poly_text = argv[i];
    } else {
      std::cerr << "unexpected argument: " << argv[i] << "\n";
      usage();
      return 2;
    }
  }
  if (pieces >= 0 && threads <= 0) threads = 1;  // --pieces implies parallel

  // ---- calibration mode -------------------------------------------------
  if (calibrate) {
    if (poly_text != nullptr || serve || batch_file != nullptr) {
      std::cerr << "--calibrate is a standalone mode\n";
      return 2;
    }
    pr::calibrate::AutotuneOptions opt;
    opt.quick = quick;
    opt.log = &std::cout;
    const pr::calibrate::CalibrationProfile profile =
        pr::calibrate::autotune(opt);
    std::string path;
    if (out_file != nullptr) {
      path = out_file;
    } else if (const char* env = std::getenv("POLYROOTS_CALIBRATION");
               env != nullptr && *env != '\0') {
      path = env;
    } else {
      path = "polyroots_calibration.json";
    }
    try {
      pr::calibrate::save_profile(profile, path);
    } catch (const pr::Error& e) {
      std::cerr << e.what() << "\n";
      return 1;
    }
    pr::calibrate::apply(profile);
    std::cout << "\nwrote " << path << "  (profile "
              << pr::calibrate::profile_id(profile) << ")\n"
              << "  karatsuba >= " << profile.karatsuba_threshold
              << " limbs, bigint ntt >= " << profile.bigint_ntt_threshold
              << " limbs\n"
              << "  mod-p ntt >= " << profile.modular_ntt_min_operand
              << " coefficients (butterfly units "
              << (profile.ntt_butterfly_units > 0.0
                      ? std::to_string(profile.ntt_butterfly_units)
                      : std::string("per-ISA default"))
              << ")\n"
              << "  crt digit units: " << profile.crt_digit_units_linear
              << "*k + " << profile.crt_digit_units_quadratic << "*k^2\n"
              << "export POLYROOTS_CALIBRATION=" << path
              << " to use it\n";
    return 0;
  }

  // Install the persisted calibration (if any) before any arithmetic.
  pr::calibrate::startup();

  pr::RootFinderConfig cfg;
  cfg.mu_bits = static_cast<std::size_t>(
      std::ceil(digits * std::log2(10.0))) + 4;
  cfg.strategy = finder;

  // ---- service-backed batch / serve modes -------------------------------
  if (serve || batch_file != nullptr) {
    if (poly_text != nullptr) {
      std::cerr << "batch/serve mode takes request lines from "
                << (batch_file ? "the batch file" : "stdin")
                << ", not the command line\n";
      return 2;
    }
    pr::service::ServiceConfig scfg;
    scfg.finder = cfg;
    scfg.parallel.num_threads = threads > 0 ? threads : 1;
    if (pieces >= 0) scfg.parallel.pieces.num_pieces = pieces;
    scfg.cache_enabled = !no_cache;
    pr::service::RootService service(scfg);

    if (batch_file != nullptr) {
      std::ifstream file;
      std::istream* in = &std::cin;
      if (std::strcmp(batch_file, "-") != 0) {
        file.open(batch_file);
        if (!file) {
          std::cerr << "cannot open batch file: " << batch_file << "\n";
          return 2;
        }
        in = &file;
      }
      std::vector<std::string> lines;
      std::string line;
      while (std::getline(*in, line)) lines.push_back(line);
      // Blank lines stay in the batch (as positional placeholders would
      // complicate output numbering) but are skipped, not errors.
      std::vector<std::size_t> line_no;
      std::vector<std::string> requests;
      for (std::size_t i = 0; i < lines.size(); ++i) {
        if (lines[i].find_first_not_of(" \t\r") == std::string::npos) {
          continue;
        }
        line_no.push_back(i + 1);
        requests.push_back(lines[i]);
      }
      const auto results = service.run_batch(requests);
      for (std::size_t i = 0; i < results.size(); ++i) {
        print_service_result(line_no[i], results[i], digits, exact);
      }
    } else {
      std::string line;
      std::size_t line_no = 0;
      while (std::getline(std::cin, line)) {
        ++line_no;
        if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
        print_service_result(line_no, service.submit(line), digits, exact);
      }
    }
    if (stats) {
      print_service_stats(service);
      print_kernel_stats();
    }
    return 0;
  }

  // ---- single-shot mode -------------------------------------------------
  if (poly_text == nullptr) {
    std::cerr << "missing polynomial argument\n";
    usage();
    return 2;
  }
  pr::Poly p;
  try {
    p = pr::Poly::parse(poly_text);
  } catch (const pr::Error& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }
  if (p.degree() < 1) {
    std::cerr << "polynomial must be non-constant\n";
    return 2;
  }

  pr::instr::reset_all();
  pr::RootReport report;
  pr::ParallelRunResult prun;
  bool ran_parallel = false;
  try {
    if (threads > 0) {
      pr::ParallelConfig pc;
      pc.num_threads = threads;
      if (pieces >= 0) pc.pieces.num_pieces = pieces;
      prun = pr::find_real_roots_parallel(p, cfg, pc);
      report = prun.report;
      ran_parallel = !prun.used_sequential_fallback;
    } else {
      report = pr::find_real_roots(p, cfg);
    }
  } catch (const pr::Error& e) {
    std::cerr << "root finding failed: " << e.what() << "\n";
    return 1;
  }

  std::cout << "p(x) = " << p << "\n";
  if (report.roots.empty()) {
    std::cout << "no real roots\n";
  }
  for (std::size_t i = 0; i < report.roots.size(); ++i) {
    std::cout << "x_" << i << " = "
              << pr::scaled_to_string(report.roots[i], report.mu, digits);
    if (report.multiplicities[i] != 1) {
      std::cout << "  (multiplicity " << report.multiplicities[i] << ")";
    }
    std::cout << "\n";
    if (exact) {
      const auto enc = pr::root_enclosure(report.roots[i], report.mu);
      std::cout << "      in (" << enc.lo << ", " << enc.hi << "]\n";
    }
  }
  if (report.used_sturm_fallback) {
    std::cout << "(used the Sturm fallback: the input has non-real roots "
                 "or a degenerate sequence)\n";
  }
  if (stats) {
    std::cout << "\n" << pr::instr::format(pr::instr::aggregate());
    print_kernel_stats();
    if (ran_parallel) {
      std::cout << "\npieces: " << prun.num_pieces
                << "  (split level " << prun.split_level << ")\n"
                << "steals: " << prun.pool.steals << "  cross-piece: "
                << prun.pool.cross_piece_steals << "\n";
      if (!prun.pool.pieces.empty()) {
        std::cout << pr::instr::format_pieces(prun.pool.pieces);
      }
    }
  }
  return 0;
}
