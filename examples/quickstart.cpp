// Quickstart: approximate all real roots of a polynomial.
//
//   $ example_quickstart
//
// Demonstrates the core API: build a pr::Poly, configure the precision,
// call pr::find_real_roots, and read the mu-approximations.
#include <iostream>

#include "polyroots.hpp"

int main() {
  // p(x) = (x^2 - 2)(x - 3)(x + 1) = x^4 - 2x^3 - 5x^2 + 4x + 6
  //      => roots -sqrt(2), -1, sqrt(2), 3.
  const pr::Poly p = pr::Poly{-2, 0, 1} * pr::Poly{-3, 1} * pr::Poly{1, 1};
  std::cout << "p(x) = " << p << "\n\n";

  pr::RootFinderConfig cfg;
  cfg.mu_bits = 64;  // roots reported as ceil(2^64 x) / 2^64

  const pr::RootReport report = pr::find_real_roots(p, cfg);

  std::cout << "degree " << report.degree << ", " << report.roots.size()
            << " real roots, all within [-2^" << report.bound_pow2 << ", 2^"
            << report.bound_pow2 << "]\n\n";
  for (std::size_t i = 0; i < report.roots.size(); ++i) {
    std::cout << "  root " << i << " ~= "
              << pr::scaled_to_string(report.roots[i], report.mu, 15)
              << "  (multiplicity " << report.multiplicities[i] << ")\n";
  }

  // Exact rational form of the first root's cell: ((k-1)/2^mu, k/2^mu].
  const pr::BigInt& k = report.roots[0];
  std::cout << "\nthe first root lies in ((k-1)/2^64, k/2^64] with k = "
            << k << "\n";

  // How much work was that?  The library traces every multi-precision
  // operation by phase.
  std::cout << "\ninterval problems solved: "
            << report.stats.intervals_solved
            << " (sieve evals " << report.stats.sieve_evals
            << ", bisection evals " << report.stats.bisect_evals
            << ", Newton iterations " << report.stats.newton_iters << ")\n";
  return 0;
}
