# Asserts the CLI's argument-validation and batch-mode contract.
#
#   cmake -DCLI=<path to example_polyroots_cli> -P check_cli_errors.cmake
#
# ctest's PASS_REGULAR_EXPRESSION overrides exit-code checking, so the
# "exit code 2 AND diagnostic on stderr" contract is asserted here with
# execute_process instead of test properties.

if(NOT DEFINED CLI)
  message(FATAL_ERROR "pass -DCLI=<path to example_polyroots_cli>")
endif()

function(expect_cli expected_rc stream expected_pattern)
  execute_process(COMMAND ${CLI} ${ARGN}
                  RESULT_VARIABLE rc
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(NOT rc EQUAL ${expected_rc})
    message(FATAL_ERROR "[${ARGN}] exited ${rc}, expected ${expected_rc}\n"
                        "stdout:\n${out}\nstderr:\n${err}")
  endif()
  if(stream STREQUAL "stderr")
    set(text "${err}")
  else()
    set(text "${out}")
  endif()
  if(NOT text MATCHES "${expected_pattern}")
    message(FATAL_ERROR "[${ARGN}] ${stream} does not match "
                        "\"${expected_pattern}\"\n"
                        "stdout:\n${out}\nstderr:\n${err}")
  endif()
endfunction()

# Malformed numeric values: exit 2 plus a diagnostic naming the flag.
expect_cli(2 stderr "invalid value for --threads" "x^2 - 2" --threads x)
expect_cli(2 stderr "invalid value for --parallel" "x^2 - 2" --parallel x)
expect_cli(2 stderr "invalid value for --digits" "x^2 - 2" --digits 12abc)
expect_cli(2 stderr "invalid value for --pieces" "x^2 - 2" --pieces -3)
# Out-of-range values are rejected the same way (never clamped).
expect_cli(2 stderr "invalid value for --threads" "x^2 - 2" --threads 0)
expect_cli(2 stderr "invalid value for --digits" "x^2 - 2" --digits 0)
# Strategy names are parsed strictly: only "paper" and "radii" exist.
expect_cli(2 stderr "invalid value for --finder" "x^2 - 2" --finder fast)
expect_cli(2 stderr "invalid value for --finder" "x^2 - 2" --finder PAPER)
# A value flag ending argv is "missing value", not "unknown option".
expect_cli(2 stderr "missing value for --digits" "x^2 - 2" --digits)
expect_cli(2 stderr "missing value for --batch" --batch)
expect_cli(2 stderr "missing value for --finder" "x^2 - 2" --finder)
# Unknown options and mixed modes still diagnose cleanly.
expect_cli(2 stderr "unknown option: --bogus" "x^2 - 2" --bogus)
expect_cli(2 stderr "batch/serve mode" --serve "x^2 - 2")
# Sanity: a well-formed invocation still succeeds.
expect_cli(0 stdout "x_0 = " "x^2 - 2" --digits 12 --threads 2)
# Both finder strategies answer; radii also takes complex-rooted inputs
# the paper path would push onto the Sturm fallback.
expect_cli(0 stdout "x_0 = " "x^2 - 2" --finder radii)
expect_cli(0 stdout "x_0 = " "x^3 - 2" --finder radii --threads 2)

# Batch-mode smoke: duplicates dedup, repeats hit, bad lines diagnose
# with their line number, and the service summary prints.
set(batch_file "${CMAKE_CURRENT_BINARY_DIR}/cli_batch_requests.txt")
file(WRITE "${batch_file}"
     "x^2 - 2\nx^2 - 2\nx^3 - 6x^2 + 11x - 6\n3*\n2x^2 - 4\n")
expect_cli(0 stdout "line 1 \\[miss\\]" --batch "${batch_file}"
           --threads 2 --stats)
expect_cli(0 stdout "line 2 \\[dedup\\]" --batch "${batch_file}"
           --threads 2)
expect_cli(0 stdout "line 4: error: " --batch "${batch_file}")
# "2x^2 - 4" canonicalizes to "x^2 - 2": batch dedup collapses it too.
expect_cli(0 stdout "line 5 \\[dedup\\]" --batch "${batch_file}")
expect_cli(0 stdout "service: requests 5" --batch "${batch_file}" --stats)
# --finder threads through batch and serve modes (strategy-tagged
# requests; the radii path bypasses the shared tree staging).
expect_cli(0 stdout "line 1 \\[miss\\]" --batch "${batch_file}"
           --finder radii --threads 2)
file(REMOVE "${batch_file}")
