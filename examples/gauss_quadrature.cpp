// Gauss-Legendre quadrature nodes via polynomial root-finding.
//
//   $ example_gauss_quadrature [n]
//
// The n-point Gauss-Legendre rule integrates polynomials of degree
// 2n-1 exactly; its nodes are the roots of the Legendre polynomial P_n
// -- all real, all in (-1, 1), clustering toward the endpoints.  This
// example computes them with the tree algorithm, derives the weights
// w_i = 2 / ((1 - x_i^2) P_n'(x_i)^2), and integrates exp(x) over [-1,1]
// to near machine precision.
#include <cmath>
#include <cstdlib>
#include <iostream>

#include "polyroots.hpp"

namespace {

/// Double-precision Horner evaluation (for weight formulas only; the
/// nodes themselves are computed exactly).
double eval_double(const pr::Poly& p, double x) {
  double acc = 0;
  for (int i = p.degree(); i >= 0; --i) {
    acc = acc * x + p.coeff(static_cast<std::size_t>(i)).to_double();
  }
  return acc;
}

}  // namespace

int main(int argc, char** argv) {
  const int n = argc > 1 ? std::atoi(argv[1]) : 12;

  // Integer-scaled Legendre polynomial (same roots as P_n).
  const pr::Poly pn = pr::legendre_scaled(n);
  std::cout << "Gauss-Legendre rule with n = " << n << " nodes\n";

  pr::RootFinderConfig cfg;
  cfg.mu_bits = 80;
  const auto report = pr::find_real_roots(pn, cfg);

  // Weights need P_n'(x_i); the scaled polynomial's constant factor
  // cancels in w_i if we normalize: P_n = pn / c with c = n!.
  double c = 1;
  for (int k = 2; k <= n; ++k) c *= k;
  const pr::Poly dpn = pn.derivative();

  std::cout << "  node x_i                width w_i\n";
  double integral = 0;  // of exp over [-1, 1]
  double wsum = 0;
  for (std::size_t i = 0; i < report.roots.size(); ++i) {
    const double x = report.root_as_double(i);
    const double dp = eval_double(dpn, x) / c;
    const double w = 2.0 / ((1.0 - x * x) * dp * dp);
    wsum += w;
    integral += w * std::exp(x);
    std::cout << "  " << pr::fixed(x, 15) << "   " << pr::fixed(w, 15)
              << "\n";
  }

  const double exact = std::exp(1.0) - std::exp(-1.0);
  std::cout << "\nsum of weights     = " << pr::fixed(wsum, 15)
            << "  (exact: 2)\n"
            << "integral of exp(x) = " << pr::fixed(integral, 15)
            << "  (exact: " << pr::fixed(exact, 15) << ")\n"
            << "absolute error     = " << std::abs(integral - exact) << "\n";

  // Gauss-Laguerre: nodes are the roots of L_n; weights
  // w_i = x_i / ((n+1)^2 L_{n+1}(x_i)^2); integrates
  // int_0^inf e^-x f(x) dx exactly for polynomial f of degree 2n-1.
  std::cout << "\nGauss-Laguerre rule with n = " << n << " nodes\n";
  const pr::Poly ln = pr::laguerre_scaled(n);      // n! L_n
  const pr::Poly ln1 = pr::laguerre_scaled(n + 1); // (n+1)! L_{n+1}
  const auto lag = pr::find_real_roots(ln, cfg);
  double cn1 = 1;  // (n+1)!
  for (int k = 2; k <= n + 1; ++k) cn1 *= k;
  double lag_integral = 0;  // of sin via int e^-x sin(x) dx = 1/2
  for (std::size_t i = 0; i < lag.roots.size(); ++i) {
    const double x = lag.root_as_double(i);
    const double l1 = eval_double(ln1, x) / cn1;
    const double w = x / ((n + 1.0) * (n + 1.0) * l1 * l1);
    lag_integral += w * std::sin(x);
  }
  std::cout << "integral of e^-x sin(x) over [0, inf) = "
            << pr::fixed(lag_integral, 12) << "  (exact: 0.5)\n"
            << "absolute error = " << std::abs(lag_integral - 0.5) << "\n";
  return 0;
}
